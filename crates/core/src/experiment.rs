//! The §4.1 measurement methodology as a deterministic experiment.
//!
//! "Each node periodically initiates probes to other nodes. A probe
//! consists of one or two request packets from the initiator to the
//! target. The nodes cycle through the different probe types, and for
//! each probe, they pick a random destination node. After sending the
//! probe, the host waits for a random amount of time between 0.6 and 1.2
//! seconds, and then repeats the process."
//!
//! The runner drives three coupled layers over the [`netsim`] substrate:
//!
//! 1. the **overlay** — every host runs an [`overlay::OverlayNode`]
//!    (15-second probing, loss-triggered chains, link-state
//!    dissemination) that answers the `lat`/`loss`/`rand` route queries;
//! 2. the **measurement driver** — the probe-type cycling above, with
//!    64-bit identifiers and local-clock timestamps;
//! 3. the **collector + accumulators** — the central machine of the
//!    paper, resolving pairs, filtering host failures and streaming
//!    outcomes into the loss and window statistics.

use crate::method::MethodSet;
use analysis::{Fnv, LossAccum, WindowAccum};
use netsim::{
    Delivery, EventQueue, HostId, LoadProfile, NetCounters, Rng, SimDuration, SimTime, Topology,
};
use overlay::{
    Delivered, DisseminationMode, MeasureKind, NodeConfig, OverlayNode, Packet, Policy, Route,
    RouteTag, Transmit,
};
use trace::{Collector, CollectorConfig, CollectorStats, PairOutcome, RecvEvent, SendEvent};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The probe methods to cycle through.
    pub methods: MethodSet,
    /// Measurement duration (probing stops after this; in-flight pairs
    /// still resolve).
    pub duration: SimDuration,
    /// Master seed; equal seeds give byte-identical results.
    pub seed: u64,
    /// Round-trip mode (RONwide 2002): targets echo measures back.
    pub round_trip: bool,
    /// Per-host pause between probes, seconds (§4.1: 0.6–1.2).
    pub wait_range_s: (f64, f64),
    /// Overlay node configuration.
    pub node: NodeConfig,
    /// How overlay nodes disseminate their link-state metrics. The
    /// default full-snapshot mode reproduces the historical behaviour
    /// bit-for-bit; the delta and gossip modes trade convergence lag for
    /// orders of magnitude less dissemination traffic at scale.
    pub dissemination: DisseminationMode,
    /// Collector policy.
    pub collector: CollectorConfig,
    /// How often the collector resolves expired pairs.
    pub sweep_interval: SimDuration,
    /// Probability that an overlay node's user-space forwarder drops a
    /// relayed packet (scheduling/queueing in the application; calibrated
    /// against the elevated via-intermediate loss in Tables 5 and 7).
    pub forward_drop: f64,
    /// Disable the diurnal load swing (unit tests).
    pub flat_load: bool,
    /// Worker threads executing workload slices. `0` means *auto*: read
    /// the `MPATH_SHARDS` environment variable, defaulting to 1. The
    /// value **never affects results** — only how slices are scheduled
    /// onto threads (see [`crate::shard`]).
    pub shards: usize,
    /// Width of one independent workload slice. A campaign longer than
    /// this is partitioned into `ceil(duration / slice_width)` slices,
    /// each simulated as an independent sub-experiment (own RNG
    /// universe, event queue and collector) at its absolute time offset,
    /// then merged in slice order. Runs no longer than one slice are
    /// executed exactly as a classic sequential run with the master
    /// seed. Results depend on `(seed, duration, slice_width)` but never
    /// on [`shards`](Self::shards).
    ///
    /// Slice boundaries close the windowed statistics: a 20-minute or
    /// 1-hour window straddling a boundary is counted as two partial
    /// windows. For window-faithful Table 6 / Figure 3 numbers keep
    /// `slice_width` a multiple of one hour (the 6-hour default is);
    /// short non-aligned widths are fine for equivalence tests, which
    /// compare runs under the *same* slice plan.
    pub slice_width: SimDuration,
    /// Name of the scenario this run executes (stamped into the output
    /// and its fingerprint). Hand-assembled configs default to `custom`.
    pub scenario: String,
    /// Digest of the scenario spec that produced this config (see
    /// [`crate::scenario::ScenarioSpec::digest`]); zero for
    /// hand-assembled configs.
    pub spec_digest: u64,
}

impl ExperimentConfig {
    /// Defaults for a method set: paper pacing, RON node config.
    pub fn new(methods: MethodSet) -> Self {
        ExperimentConfig {
            methods,
            duration: SimDuration::from_hours(6),
            seed: 1,
            round_trip: false,
            wait_range_s: (0.6, 1.2),
            node: NodeConfig::default(),
            dissemination: DisseminationMode::FullSnapshot,
            collector: CollectorConfig::default(),
            sweep_interval: SimDuration::from_secs(10),
            forward_drop: 0.008,
            flat_load: false,
            shards: 0,
            slice_width: SimDuration::from_hours(6),
            scenario: "custom".to_string(),
            spec_digest: 0,
        }
    }
}

/// Everything a run produces.
pub struct ExperimentOutput {
    /// Name of the scenario that produced this run.
    pub scenario: String,
    /// Digest of the scenario spec (zero for hand-assembled configs).
    pub spec_digest: u64,
    /// Analysis-method display names (indexed by method id).
    pub names: Vec<String>,
    /// Loss/latency accumulators.
    pub loss: LossAccum,
    /// 20-minute windows (Figure 3).
    pub win20: WindowAccum,
    /// 1-hour windows (Table 6).
    pub win60: WindowAccum,
    /// Raw network flow counters.
    pub net: NetCounters,
    /// Overlay probes sent by all nodes (the reactive overhead).
    pub overlay_probes: u64,
    /// Measurement legs transmitted.
    pub measure_legs: u64,
    /// Collector counters (mergeable across slices): resolved pairs,
    /// host-failure discards, late receives.
    pub collector: CollectorStats,
    /// Per route tag (direct/rand/lat/loss): (legs sent, legs that used
    /// an intermediate). Shows how often each policy diverts.
    pub route_usage: [(u64, u64); 4],
    /// Host count.
    pub n: usize,
    /// Configured measurement duration.
    pub duration: SimDuration,
}

impl ExperimentOutput {
    /// Analysis-method id by display name.
    pub fn index_of(&self, name: &str) -> Option<u8> {
        self.names.iter().position(|n| *n == name).map(|i| i as u8)
    }

    /// Summary row for a named method.
    pub fn summary(&self, name: &str) -> Option<analysis::MethodSummary> {
        self.index_of(name).map(|m| self.loss.summary(m))
    }

    /// Pairs discarded by the §4.1 host-failure filter.
    pub fn discarded(&self) -> u64 {
        self.collector.discarded
    }

    /// A stable 64-bit fingerprint over the *entire* output state —
    /// every accumulator cell, histogram bucket, counter and the exact
    /// bit patterns of all floating-point sums.
    ///
    /// Two outputs with equal fingerprints render byte-identical tables
    /// and figures; the sharding equivalence harness uses this to prove
    /// that `shards = N` reproduces `shards = 1` exactly.
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fnv::new();
        f.write(self.scenario.as_bytes());
        f.write(&[0]);
        f.write_u64(self.spec_digest);
        for name in &self.names {
            f.write(name.as_bytes());
            f.write(&[0]);
        }
        self.loss.digest(&mut f);
        self.win20.digest(&mut f);
        self.win60.digest(&mut f);
        // Net counters fold field-by-field for the same reason as the
        // collector counters below; `lsa_bytes`/`lsa_entries` are
        // deliberately excluded so the dissemination mode is a free
        // knob that cannot re-roll the FullSnapshot goldens.
        f.write_u64(self.net.sent);
        f.write_u64(self.net.delivered);
        f.write_u64(self.net.dropped_outage);
        f.write_u64(self.net.dropped_congestion);
        f.write_u64(self.overlay_probes);
        f.write_u64(self.measure_legs);
        // Collector counters are folded field-by-field (not via the
        // struct) so adding diagnostics to `CollectorStats` — e.g.
        // `malformed_receives`/`malformed_sends`, which are structurally
        // zero in simulation (the driver's legs are bounded by validated
        // method specs) — cannot silently re-roll every recorded
        // fingerprint golden.
        f.write_u64(self.collector.resolved);
        f.write_u64(self.collector.discarded);
        f.write_u64(self.collector.late_receives);
        for (total, via) in self.route_usage {
            f.write_u64(total);
            f.write_u64(via);
        }
        f.write_u64(self.n as u64);
        f.write_u64(self.duration.as_micros());
        f.finish()
    }
}

/// Wire version of the distributed result format. Bump when any
/// accumulator's serde layout changes incompatibly; a coordinator and
/// worker disagreeing on this value must fail loudly, never merge.
/// (v2: `CollectorStats` gained `peak_pending` — a v1 binary's strict
/// field check would reject the new map only *after* a successful
/// handshake, so the version must say no first. v3: `NetCounters`
/// gained `lsa_bytes`/`lsa_entries` for dissemination accounting.)
pub const OUTPUT_WIRE_VERSION: u32 = 3;

// Versioned wire format (v3): the exact in-memory state crosses the
// wire — every accumulator cell and the bit patterns of every f64 sum —
// so a slice result computed on another host merges byte-identically to
// one computed locally. `duration` travels as integer microseconds.
impl serde::Serialize for ExperimentOutput {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("v".into(), serde::Value::Int(OUTPUT_WIRE_VERSION as i64)),
            ("scenario".into(), self.scenario.to_value()),
            ("spec_digest".into(), self.spec_digest.to_value()),
            ("names".into(), self.names.to_value()),
            ("loss".into(), self.loss.to_value()),
            ("win20".into(), self.win20.to_value()),
            ("win60".into(), self.win60.to_value()),
            ("net".into(), self.net.to_value()),
            ("overlay_probes".into(), self.overlay_probes.to_value()),
            ("measure_legs".into(), self.measure_legs.to_value()),
            ("collector".into(), self.collector.to_value()),
            ("route_usage".into(), self.route_usage.to_value()),
            ("n".into(), self.n.to_value()),
            ("duration_us".into(), self.duration.as_micros().to_value()),
        ])
    }
}

impl serde::Deserialize for ExperimentOutput {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Map(entries) = v else {
            return Err(serde::Error::new(format!(
                "ExperimentOutput: expected map, found {}",
                v.kind()
            )));
        };
        const FIELDS: [&str; 14] = [
            "v",
            "scenario",
            "spec_digest",
            "names",
            "loss",
            "win20",
            "win60",
            "net",
            "overlay_probes",
            "measure_legs",
            "collector",
            "route_usage",
            "n",
            "duration_us",
        ];
        for (k, _) in entries {
            if !FIELDS.contains(&k.as_str()) {
                return Err(serde::Error::new(format!("ExperimentOutput: unknown field `{k}`")));
            }
        }
        let version = u32::from_value(v.field("v")?)?;
        if version != OUTPUT_WIRE_VERSION {
            return Err(serde::Error::new(format!(
                "ExperimentOutput: unsupported wire version {version} (this build speaks \
                 {OUTPUT_WIRE_VERSION})"
            )));
        }
        let out = ExperimentOutput {
            scenario: String::from_value(v.field("scenario")?)?,
            spec_digest: u64::from_value(v.field("spec_digest")?)?,
            names: Vec::<String>::from_value(v.field("names")?)?,
            loss: LossAccum::from_value(v.field("loss")?)?,
            win20: WindowAccum::from_value(v.field("win20")?)?,
            win60: WindowAccum::from_value(v.field("win60")?)?,
            net: NetCounters::from_value(v.field("net")?)?,
            overlay_probes: u64::from_value(v.field("overlay_probes")?)?,
            measure_legs: u64::from_value(v.field("measure_legs")?)?,
            collector: CollectorStats::from_value(v.field("collector")?)?,
            route_usage: <[(u64, u64); 4]>::from_value(v.field("route_usage")?)?,
            n: usize::from_value(v.field("n")?)?,
            duration: SimDuration::from_micros(u64::from_value(v.field("duration_us")?)?),
        };
        if out.loss.n() != out.n {
            return Err(serde::Error::new(format!(
                "ExperimentOutput: loss accumulator is {}-host but n={}",
                out.loss.n(),
                out.n
            )));
        }
        Ok(out)
    }
}

enum Ev {
    /// Overlay timer for one host.
    NodeTimer(u16),
    /// Measurement-driver wakeup for one host.
    Wake(u16),
    /// A packet reaches a host.
    Arrive { to: u16, packet: Packet },
    /// The delayed second leg of a dd probe.
    Leg { src: u16, dst: u16, id: u64, method: u8, leg: u8, tag: RouteTag, exclude: Option<Route> },
    /// A delayed leg of an `all_prior` probe: carries every route the
    /// earlier legs actually took, and (unlike [`Ev::Leg`]) chains — the
    /// handler schedules the next leg so it can append its own route.
    DiverseLeg { src: u16, dst: u16, id: u64, method: u8, leg: u8, prior: Vec<Route> },
    /// Collector sweep.
    Sweep,
}

/// Which previously-used routes a measurement leg must steer around.
enum Avoid<'a> {
    /// First leg, or a non-`distinct` copy: no constraint.
    None,
    /// §3.2 pairwise diversity: avoid the first copy's path only.
    First(Route),
    /// Full diversity (`all_prior`): avoid every prior leg's path.
    Prior(&'a [Route]),
}

fn policy_for(tag: RouteTag) -> Policy {
    match tag {
        RouteTag::Direct => Policy::Direct,
        RouteTag::Rand => Policy::Random,
        RouteTag::Lat => Policy::MinLat,
        RouteTag::Loss => Policy::MinLoss,
    }
}

struct Runner {
    cfg: ExperimentConfig,
    /// Absolute start of this run's (or slice's) measurement period.
    start: SimTime,
    net: netsim::Network,
    nodes: Vec<OverlayNode>,
    q: EventQueue<Ev>,
    collector: Collector,
    /// Reused outcome buffer: each sweep swaps it with the collector's
    /// finalized vector (`drain_into`), so the resolve → feed loop
    /// allocates nothing in steady state.
    outcomes: Vec<PairOutcome>,
    loss: LossAccum,
    win20: WindowAccum,
    win60: WindowAccum,
    cycles: Vec<usize>,
    rng: Rng,
    measure_legs: u64,
    route_usage: [(u64, u64); 4],
    /// Sparse probe mesh lifted off the topology before it moved into
    /// the network: `mesh[h]` lists the destinations host `h` may
    /// probe. `None` is the historical clique path, untouched down to
    /// the RNG draw.
    mesh: Option<std::sync::Arc<Vec<Vec<u16>>>>,
}

impl Runner {
    fn new(topo: Topology, cfg: ExperimentConfig, start: SimTime) -> Self {
        let n = topo.n();
        let total_methods = cfg.methods.total();
        // Scenario-driven configs were validated at resolve time; this
        // catches hand-assembled method sets whose leg count the wire
        // format (and the collector's probe records) cannot carry.
        assert!(
            cfg.methods.max_legs() <= crate::method::MAX_PROBE_LEGS,
            "method set sends {} legs but the wire caps probes at {}",
            cfg.methods.max_legs(),
            crate::method::MAX_PROBE_LEGS
        );
        let root = Rng::new(cfg.seed ^ 0x00E0_77E5_7A11_BEEF);
        let mesh = topo.probe_mesh().cloned();
        let mut net = netsim::Network::new(topo, cfg.seed);
        if cfg.flat_load {
            net.set_load(LoadProfile::flat());
        }
        let nodes = (0..n)
            .map(|i| {
                OverlayNode::new_with_dissemination(
                    HostId(i as u16),
                    n,
                    cfg.node,
                    cfg.seed ^ (0x1000 + i as u64),
                    start,
                    cfg.dissemination,
                )
            })
            .collect();
        let collector = Collector::new(n, cfg.collector);
        // Depth (max legs over the set) sizes the best-of-first-j curve;
        // pair-shaped sets keep the exact historical accumulator layout.
        let loss = LossAccum::with_depth(n, total_methods, cfg.methods.max_legs());
        // total_methods counts real methods plus inferred views.
        let win20 = WindowAccum::new(n, total_methods, SimDuration::from_mins(20));
        let win60 = WindowAccum::new(n, total_methods, SimDuration::from_hours(1));
        Runner {
            rng: root.derive(7),
            cfg,
            start,
            net,
            nodes,
            q: EventQueue::new(),
            collector,
            outcomes: Vec::new(),
            loss,
            win20,
            win60,
            cycles: vec![0; n],
            measure_legs: 0,
            route_usage: [(0, 0); 4],
            mesh,
        }
    }

    fn local(&self, h: u16, now: SimTime) -> i64 {
        self.net.local_micros(HostId(h), now)
    }

    /// Puts one node-emitted packet on the wire.
    fn transmit(&mut self, now: SimTime, from: u16, tx: Transmit) {
        debug_assert_ne!(HostId(from), tx.to);
        // Account dissemination payload as it would encode on the wire
        // (`overlay::wire`): metric vectors cost a 2-byte count prefix
        // plus 9 bytes per entry; a standalone LSA adds its 13-byte
        // header. Counted on offer, delivered or not, like `net.sent`.
        match &tx.packet {
            Packet::ProbeReq { metrics, .. } | Packet::ProbeResp { metrics, .. }
                if !metrics.is_empty() =>
            {
                self.net.note_lsa(2 + 9 * metrics.len() as u64, metrics.len() as u64);
            }
            Packet::Lsa { entries, .. } => {
                self.net.note_lsa(15 + 9 * entries.len() as u64, entries.len() as u64);
            }
            _ => {}
        }
        match self.net.transmit(now, HostId(from), tx.to) {
            Delivery::Delivered { delay } => {
                self.q.push(now + delay, Ev::Arrive { to: tx.to.0, packet: tx.packet });
            }
            Delivery::Dropped { .. } => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn send_measure(
        &mut self,
        now: SimTime,
        src: u16,
        dst: u16,
        id: u64,
        method: u8,
        leg: u8,
        tag: RouteTag,
        avoid: Avoid<'_>,
    ) -> Route {
        let kind = if self.cfg.round_trip { MeasureKind::Request } else { MeasureKind::OneWay };
        let sent_local_us = self.local(src, now);
        self.collector.on_send(SendEvent {
            id,
            method,
            leg,
            src: HostId(src),
            dst: HostId(dst),
            route: tag as u8,
            sent: now,
            sent_local_us,
        });
        self.measure_legs += 1;
        let node = &mut self.nodes[src as usize];
        let route = match avoid {
            Avoid::None => node.route(HostId(dst), policy_for(tag), now),
            // §3.2: the second copy of a multi-path pair travels a
            // distinct path.
            Avoid::First(first) => node.route_diverse(HostId(dst), policy_for(tag), now, first),
            Avoid::Prior(prior) => node.route_avoiding(HostId(dst), policy_for(tag), now, prior),
        };
        let pkt = Packet::Measure {
            id,
            method,
            leg,
            origin: HostId(src),
            target: HostId(dst),
            route: tag,
            kind,
            sent_local_us,
        };
        let usage = &mut self.route_usage[tag as usize];
        usage.0 += 1;
        if matches!(route, Route::Via(_)) {
            usage.1 += 1;
        }
        let tx = node.wrap(route, HostId(dst), pkt);
        self.transmit(now, src, tx);
        route
    }

    fn on_wake(&mut self, now: SimTime, h: u16, end: SimTime) {
        // Schedule the next wake first (pacing continues even while the
        // host process is down — a crashed process leaves a send gap, the
        // collector's 90 s filter sees it).
        let wait = self.rng.uniform(self.cfg.wait_range_s.0, self.cfg.wait_range_s.1);
        let next = now + SimDuration::from_secs_f64(wait);
        if next < end {
            self.q.push(next, Ev::Wake(h));
        }
        if !self.net.host_up(HostId(h), now) {
            return;
        }
        let midx = self.cycles[h as usize] % self.cfg.methods.methods.len();
        self.cycles[h as usize] += 1;
        let method = self.cfg.methods.methods[midx].clone();
        let dst = if let Some(mesh) = &self.mesh {
            // Sparse mesh: probe a uniform neighbor. One RNG draw, like
            // the clique path, so the knob only redirects destinations.
            let nbrs = &mesh[h as usize];
            nbrs[self.rng.below(nbrs.len() as u64) as usize]
        } else {
            let n = self.nodes.len() as u64;
            let mut dst = self.rng.below(n - 1) as u16;
            if dst >= h {
                dst += 1;
            }
            dst
        };
        let id = self.rng.next_u64();
        let first_route =
            self.send_measure(now, h, dst, id, midx as u8, 0, method.legs[0], Avoid::None);
        if method.all_prior && method.legs.len() > 1 {
            // Full diversity: every copy steers around every earlier
            // copy's actual route, not just the first one's.
            if method.gap == SimDuration::ZERO {
                let mut prior = vec![first_route];
                for (leg, &tag) in method.legs.iter().enumerate().skip(1) {
                    let r = self.send_measure(
                        now,
                        h,
                        dst,
                        id,
                        midx as u8,
                        leg as u8,
                        tag,
                        Avoid::Prior(&prior),
                    );
                    prior.push(r);
                }
            } else {
                // Delayed legs chain through DiverseLeg: each handler
                // appends its route before scheduling the next, so every
                // leg sees all actual predecessors.
                self.q.push(
                    now + method.gap,
                    Ev::DiverseLeg {
                        src: h,
                        dst,
                        id,
                        method: midx as u8,
                        leg: 1,
                        prior: vec![first_route],
                    },
                );
            }
            return;
        }
        // Redundant copies: leg i rides i gaps behind the first. §3.2's
        // path diversity generalizes as "every later copy avoids the
        // first copy's path" — copies beyond the second may still share
        // a detour with each other, exactly as two `rand` legs may.
        for (leg, &tag) in method.legs.iter().enumerate().skip(1) {
            let exclude = if method.distinct { Some(first_route) } else { None };
            if method.gap == SimDuration::ZERO {
                self.send_measure(
                    now,
                    h,
                    dst,
                    id,
                    midx as u8,
                    leg as u8,
                    tag,
                    exclude.map_or(Avoid::None, Avoid::First),
                );
            } else {
                self.q.push(
                    now + method.gap * leg as u64,
                    Ev::Leg { src: h, dst, id, method: midx as u8, leg: leg as u8, tag, exclude },
                );
            }
        }
    }

    fn on_arrive(&mut self, now: SimTime, to: u16, packet: Packet) {
        if !self.net.host_up(HostId(to), now) {
            return; // receiver process down: packet dies at the host
        }
        let local = self.local(to, now);
        // Is this host acting as a forwarding intermediate for the packet?
        let relaying = matches!(&packet, Packet::Forward { target, .. } if target.0 != to);
        let mut out = Vec::new();
        let delivered = self.nodes[to as usize].on_packet(now, local, packet, &mut out);
        for tx in out {
            if relaying && self.rng.chance(self.cfg.forward_drop) {
                continue; // the user-space forwarder dropped the packet
            }
            self.transmit(now, to, tx);
        }
        if let Some(Delivered::Measure { id, method, leg, origin, route, kind, .. }) = delivered {
            match kind {
                MeasureKind::OneWay => {
                    self.collector.on_recv(RecvEvent { id, leg, recv: now, recv_local_us: local });
                }
                MeasureKind::Request => {
                    // RONwide round-trip: echo back toward the origin via
                    // the same tactic, chosen from this node's tables.
                    let node = &mut self.nodes[to as usize];
                    let r = node.route(origin, policy_for(route), now);
                    let echo = Packet::Measure {
                        id,
                        method,
                        leg,
                        origin: HostId(to),
                        target: origin,
                        route,
                        kind: MeasureKind::Echo,
                        sent_local_us: local,
                    };
                    let tx = node.wrap(r, origin, echo);
                    self.transmit(now, to, tx);
                }
                MeasureKind::Echo => {
                    // Back at the origin: the round trip is complete.
                    self.collector.on_recv(RecvEvent { id, leg, recv: now, recv_local_us: local });
                }
            }
        }
    }

    fn on_node_timer(&mut self, now: SimTime, h: u16) {
        let due = match self.nodes[h as usize].poll_at() {
            Some(t) => t,
            None => return,
        };
        if due > now {
            // Stale timer; re-arm for the real deadline.
            self.q.push(due, Ev::NodeTimer(h));
            return;
        }
        if !self.net.host_up(HostId(h), now) {
            // Crashed process: probing pauses; retry shortly.
            self.q.push(now + SimDuration::from_secs(5), Ev::NodeTimer(h));
            return;
        }
        let local = self.local(h, now);
        let mut out = Vec::new();
        self.nodes[h as usize].on_timer(now, local, &mut out);
        for tx in out {
            self.transmit(now, h, tx);
        }
        if let Some(next) = self.nodes[h as usize].poll_at() {
            self.q.push(next.max(now + SimDuration::from_micros(1)), Ev::NodeTimer(h));
        }
    }

    fn drain_outcomes(&mut self, now: SimTime) {
        self.collector.advance(now);
        let mut outs = std::mem::take(&mut self.outcomes);
        self.collector.drain_into(&mut outs);
        for o in &outs {
            self.feed(o);
        }
        self.outcomes = outs; // keep the capacity for the next sweep
    }

    fn feed(&mut self, o: &PairOutcome) {
        self.loss.on_outcome(o);
        self.win20.on_outcome(o);
        self.win60.on_outcome(o);
        // Synthesise the inferred views (direct*, lat*).
        let base = self.cfg.methods.methods.len() as u8;
        for (vi, view) in self.cfg.methods.views.iter().enumerate() {
            if view.source == o.method {
                if let Some(leg) = o.leg(view.leg as usize) {
                    let synth = PairOutcome::from_legs(
                        o.id,
                        base + vi as u8,
                        o.src,
                        o.dst,
                        o.sent,
                        [Some(leg), None, None, None],
                        o.discarded,
                    );
                    self.loss.on_outcome(&synth);
                    self.win20.on_outcome(&synth);
                    self.win60.on_outcome(&synth);
                }
            }
        }
    }

    fn run(mut self) -> (ExperimentOutput, u64) {
        let n = self.nodes.len();
        let end = self.start + self.cfg.duration;
        // Tail time for in-flight pairs to resolve.
        let hard_end = end + self.cfg.collector.receive_window + SimDuration::from_secs(10);
        // Stagger initial wakes and arm node timers.
        for h in 0..n as u16 {
            let stagger = SimDuration::from_secs_f64(self.rng.uniform(0.0, 1.2));
            self.q.push(self.start + stagger, Ev::Wake(h));
            if let Some(t) = self.nodes[h as usize].poll_at() {
                self.q.push(t, Ev::NodeTimer(h));
            }
        }
        self.q.push(self.start + self.cfg.sweep_interval, Ev::Sweep);

        while let Some((now, ev)) = self.q.pop() {
            if now > hard_end {
                break;
            }
            match ev {
                Ev::Wake(h) => self.on_wake(now, h, end),
                Ev::NodeTimer(h) => self.on_node_timer(now, h),
                Ev::Arrive { to, packet } => self.on_arrive(now, to, packet),
                Ev::Leg { src, dst, id, method, leg, tag, exclude } => {
                    if self.net.host_up(HostId(src), now) {
                        self.send_measure(
                            now,
                            src,
                            dst,
                            id,
                            method,
                            leg,
                            tag,
                            exclude.map_or(Avoid::None, Avoid::First),
                        );
                    }
                }
                Ev::DiverseLeg { src, dst, id, method, leg, mut prior } => {
                    let m = &self.cfg.methods.methods[method as usize];
                    let tag = m.legs[leg as usize];
                    let gap = m.gap;
                    let legs = m.legs.len() as u8;
                    if self.net.host_up(HostId(src), now) {
                        let r = self.send_measure(
                            now,
                            src,
                            dst,
                            id,
                            method,
                            leg,
                            tag,
                            Avoid::Prior(&prior),
                        );
                        prior.push(r);
                    }
                    let next = leg + 1;
                    if next < legs {
                        self.q.push(
                            now + gap,
                            Ev::DiverseLeg { src, dst, id, method, leg: next, prior },
                        );
                    }
                }
                Ev::Sweep => {
                    self.drain_outcomes(now);
                    self.q.push(now + self.cfg.sweep_interval, Ev::Sweep);
                }
            }
        }
        // Final resolution of everything still pending.
        self.collector.advance(hard_end);
        self.collector.finish(hard_end);
        self.drain_outcomes(hard_end);
        self.win20.finish();
        self.win60.finish();

        let overlay_probes = self.nodes.iter().map(|nd| nd.counters().0).sum();
        // Diagnostic only — summed link-state footprint at slice end.
        // Never part of ExperimentOutput, so it cannot perturb the wire
        // format or any fingerprint.
        let table_bytes: u64 =
            self.nodes.iter().map(|nd| nd.table().approx_bytes() as u64).sum();
        let stats = self.collector.stats();
        let out = ExperimentOutput {
            scenario: self.cfg.scenario.clone(),
            spec_digest: self.cfg.spec_digest,
            names: self.cfg.methods.names(),
            loss: self.loss,
            win20: self.win20,
            win60: self.win60,
            net: *self.net.counters(),
            overlay_probes,
            measure_legs: self.measure_legs,
            collector: stats,
            route_usage: self.route_usage,
            n,
            duration: self.cfg.duration,
        };
        (out, table_bytes)
    }
}

/// Runs one workload slice: a self-contained sub-experiment whose
/// measurement period starts at the absolute instant `start`. The slice
/// inherits the topology (same testbed) but animates it with `cfg.seed`
/// (the caller derives per-slice seeds); diurnal load, host clocks and
/// window statistics all see the true campaign timeline because the
/// network processes are functions of absolute time and initialise
/// lazily at first observation.
pub(crate) fn run_slice(topo: Topology, cfg: ExperimentConfig, start: SimTime) -> ExperimentOutput {
    Runner::new(topo, cfg, start).run().0
}

/// [`run_slice`] plus a diagnostic side channel: the summed link-state
/// table footprint (bytes) over all nodes at slice end. The diagnostic
/// never enters [`ExperimentOutput`], so byte identity is untouched.
pub(crate) fn run_slice_diag(
    topo: Topology,
    cfg: ExperimentConfig,
    start: SimTime,
) -> (ExperimentOutput, u64) {
    Runner::new(topo, cfg, start).run()
}

/// Runs the paper's measurement experiment on `topo` under `cfg`.
///
/// The campaign is partitioned into independent workload slices and
/// executed on [`ExperimentConfig::shards`] worker threads; results are
/// byte-identical for every shard count (see [`crate::shard`]).
pub fn run_experiment(topo: Topology, cfg: ExperimentConfig) -> ExperimentOutput {
    crate::shard::run_sharded(topo, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::{Method, MethodSet};

    fn quick_cfg(methods: MethodSet, seed: u64, mins: u64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::new(methods);
        cfg.duration = SimDuration::from_mins(mins);
        cfg.seed = seed;
        cfg.flat_load = true;
        cfg
    }

    #[test]
    fn lossless_network_measures_zero_loss() {
        let topo = Topology::synthetic(4, 0.0, 11);
        let out = run_experiment(topo, quick_cfg(MethodSet::ron2003(), 11, 30));
        for name in ["loss", "direct rand", "direct direct", "direct*"] {
            let s = out.summary(name).unwrap();
            assert!(s.pairs > 50, "{name}: pairs={}", s.pairs);
            assert_eq!(s.totlp, 0.0, "{name} must see no loss");
        }
        assert!(out.measure_legs > 0);
        assert!(out.overlay_probes > 0, "the RON prober must run");
    }

    #[test]
    fn lossy_network_direct_sees_loss_and_mesh_reduces_it() {
        // 1.5% per edge → ~3% per path; mesh spreads copies across
        // distinct cores so totlp must drop well below direct loss.
        let topo = Topology::synthetic(6, 0.015, 13);
        let out = run_experiment(topo, quick_cfg(MethodSet::ron2003(), 13, 240));
        let direct = out.summary("direct*").unwrap();
        let mesh = out.summary("direct rand").unwrap();
        assert!(direct.lp1 > 1.0, "direct lp1={}", direct.lp1);
        assert!(
            mesh.totlp < direct.lp1 * 0.85,
            "mesh {} vs direct {}",
            mesh.totlp,
            direct.lp1
        );
        let clp = mesh.clp.expect("mesh clp");
        assert!(clp < 100.0);
    }

    #[test]
    fn back_to_back_clp_exceeds_random_intermediate_clp() {
        // The paper's central correlation finding, on a small testbed.
        let topo = Topology::synthetic(6, 0.02, 17);
        let out = run_experiment(topo, quick_cfg(MethodSet::ron2003(), 17, 360));
        let dd = out.summary("direct direct").unwrap().clp.expect("dd clp");
        let dr = out.summary("direct rand").unwrap().clp.expect("dr clp");
        assert!(dd > dr, "CLP(direct direct)={dd} must exceed CLP(direct rand)={dr}");
        assert!(dd > 40.0, "bursty losses: dd clp={dd}");
    }

    #[test]
    fn round_trip_mode_produces_rtt_latencies() {
        let topo = Topology::synthetic(4, 0.0, 19);
        let mut cfg = quick_cfg(MethodSet::ron_wide(), 19, 30);
        cfg.round_trip = true;
        let out = run_experiment(topo, cfg);
        let d = out.summary("direct").unwrap();
        assert!(d.pairs > 30);
        assert_eq!(d.totlp, 0.0);
        // One-way in this synthetic topo is a few ms; RTT must be ~2×
        // (and definitely above one-way).
        assert!(d.lat_ms > 5.0, "rtt={}ms", d.lat_ms);
        let rr = out.summary("rand rand").unwrap();
        assert!(rr.lat_ms > d.lat_ms, "two-hop RTT must exceed direct RTT");
    }

    #[test]
    fn determinism_same_seed_same_tables() {
        let run = |seed| {
            let topo = Topology::synthetic(4, 0.01, seed);
            let out = run_experiment(topo, quick_cfg(MethodSet::ron_narrow(), seed, 60));
            let s = out.summary("direct rand").unwrap();
            (s.lp1, s.lp2, s.totlp, s.clp, s.lat_ms, s.pairs)
        };
        assert_eq!(run(23), run(23));
        assert_ne!(run(23), run(24), "different seeds explore different universes");
    }

    #[test]
    fn views_match_their_source_legs() {
        let topo = Topology::synthetic(5, 0.01, 29);
        let out = run_experiment(topo, quick_cfg(MethodSet::ron2003(), 29, 120));
        let dr = out.index_of("direct rand").unwrap();
        let dstar = out.index_of("direct*").unwrap();
        // direct*'s pair count equals direct rand's (every pair yields a
        // view) and its lp1 equals direct rand's first-leg loss.
        let a = out.loss.summary(dr);
        let b = out.loss.summary(dstar);
        assert_eq!(a.pairs, b.pairs);
        assert!((a.lp1 - b.lp1).abs() < 1e-9);
        assert_eq!(b.lp2, None, "views are single-packet");
    }

    fn k_leg_set(all_prior: bool, legs: Vec<RouteTag>, gap_ms: u64) -> MethodSet {
        let mut m = Method::redundant("k!", legs, SimDuration::from_millis(gap_ms));
        m.all_prior = all_prior;
        MethodSet { methods: vec![m], views: Vec::new() }
    }

    #[test]
    fn two_leg_all_prior_is_exactly_pairwise_diversity() {
        // With two legs "avoid all prior routes" degenerates to "avoid
        // the first route", and the avoiding router consumes RNG draws
        // identically — the whole run must be bit-equal, which is what
        // keeps the knob's default off-state away from the goldens.
        let run = |all_prior| {
            let set = k_leg_set(all_prior, vec![RouteTag::Direct, RouteTag::Rand], 10);
            let topo = Topology::synthetic(5, 0.01, 37);
            run_experiment(topo, quick_cfg(set, 37, 60)).fingerprint()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn four_leg_all_prior_steers_later_legs_off_prior_paths() {
        let run = |all_prior, gap_ms| {
            let legs =
                vec![RouteTag::Direct, RouteTag::Rand, RouteTag::Rand, RouteTag::Rand];
            let topo = Topology::synthetic(5, 0.01, 41);
            run_experiment(topo, quick_cfg(k_leg_set(all_prior, legs, gap_ms), 41, 60))
        };
        let pairwise = run(false, 10).fingerprint();
        let full = run(true, 10);
        assert_ne!(
            pairwise,
            full.fingerprint(),
            "legs 3 and 4 must route around *all* predecessors, not just leg 1"
        );
        assert_eq!(full.fingerprint(), run(true, 10).fingerprint(), "and deterministically");
        // The gap-0 sequential path exercises the same avoidance inline.
        let seq = run(true, 0);
        assert!(seq.summary("k!").unwrap().pairs > 30);
        assert!(seq.measure_legs >= 4 * seq.summary("k!").unwrap().pairs);
    }

    #[test]
    fn lsa_counters_never_touch_the_fingerprint() {
        let topo = Topology::synthetic(4, 0.01, 43);
        let mut out = run_experiment(topo, quick_cfg(MethodSet::ron_narrow(), 43, 30));
        assert!(out.net.lsa_bytes > 0, "full snapshots must be accounted");
        assert!(out.net.lsa_entries > 0);
        let before = out.fingerprint();
        out.net.lsa_bytes ^= 0xDEAD;
        out.net.lsa_entries ^= 0xBEEF;
        assert_eq!(out.fingerprint(), before, "lsa counters are excluded by design");
    }

    #[test]
    fn delta_mode_cuts_dissemination_bytes_and_stays_deterministic() {
        let run = |mode| {
            let mut cfg = quick_cfg(MethodSet::ron_narrow(), 47, 120);
            cfg.dissemination = mode;
            run_experiment(Topology::synthetic(6, 0.01, 47), cfg)
        };
        let full = run(DisseminationMode::FullSnapshot);
        let delta = run(DisseminationMode::Delta { max_age_probes: 16 });
        assert!(delta.collector.resolved > 0, "delta-mode routing must still resolve pairs");
        assert!(delta.net.lsa_bytes > 0, "anti-entropy refreshes still cost bytes");
        assert!(
            delta.net.lsa_bytes * 2 < full.net.lsa_bytes,
            "delta {} vs full {} bytes",
            delta.net.lsa_bytes,
            full.net.lsa_bytes
        );
        let again = run(DisseminationMode::Delta { max_age_probes: 16 });
        assert_eq!(delta.fingerprint(), again.fingerprint(), "delta mode is deterministic");
        assert_eq!(delta.net.lsa_bytes, again.net.lsa_bytes);
    }

    #[test]
    fn gossip_mode_disseminates_and_stays_deterministic() {
        let run = || {
            let mut cfg = quick_cfg(MethodSet::ron_narrow(), 53, 120);
            cfg.dissemination = DisseminationMode::Gossip { fanout: 3, interval_ms: 15_000 };
            run_experiment(Topology::synthetic(6, 0.01, 53), cfg)
        };
        let a = run();
        assert!(a.collector.resolved > 0, "gossip-mode routing must still resolve pairs");
        assert!(a.net.lsa_bytes > 0, "gossip rounds must be accounted");
        assert_eq!(a.fingerprint(), run().fingerprint(), "gossip mode is deterministic");
    }

    #[test]
    fn windows_accumulate() {
        let topo = Topology::synthetic(4, 0.02, 31);
        let out = run_experiment(topo, quick_cfg(MethodSet::ron_narrow(), 31, 90));
        let loss_m = out.index_of("loss").unwrap();
        assert!(out.win20.window_count(loss_m) > 0, "20-minute windows must close");
        assert!(out.win60.window_count(loss_m) > 0, "hour windows must close");
    }
}
