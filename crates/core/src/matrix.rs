//! The scenarios × seeds matrix runner.
//!
//! One paper campaign answers "how do the methods compare under these
//! conditions, in this random universe". The matrix sweeps both axes at
//! once: every scenario runs under every seed (each cell through the
//! deterministic sharded runner), per-cell fingerprints witness exact
//! reproducibility, and one comparative report pools each scenario's
//! universes and lines the methods up against the `direct` row — with
//! the best-of-first-j loss curve (`j = 1..k`) that shows what each
//! additional redundant copy buys.
//!
//! ```text
//! repro --matrix ron2003,flash-crowd --seeds 3 --days 0.05
//! ```

use crate::report::{merge_outputs, resolve};
use crate::scenario::ScenarioSpec;
use crate::ExperimentOutput;
use analysis::scenario_stamp;
use netsim::SimDuration;
use std::fmt::Write as _;

/// One (scenario, seed) cell's reproducibility witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixCell {
    /// The cell's master seed.
    pub seed: u64,
    /// [`ExperimentOutput::fingerprint`] of the cell's run — invariant
    /// under the shard count, so the same matrix on any machine must
    /// print the same values.
    pub fingerprint: u64,
    /// Measurement legs the cell transmitted.
    pub measure_legs: u64,
    /// Probes discarded by the §4.1 host-failure filter.
    pub discarded: u64,
}

/// One scenario row of the matrix: its per-seed cells plus the pooled
/// statistics across every seed's universe.
pub struct MatrixScenario {
    /// Scenario registry name.
    pub scenario: String,
    /// Spec digest (stamped into every cell).
    pub spec_digest: u64,
    /// Sparse probe-mesh degree, when the scenario's topology declares
    /// one (`TopologySpec::SparseSynthetic`); `None` is the clique.
    pub mesh_k: Option<usize>,
    /// Per-seed cells, in the caller's seed order.
    pub cells: Vec<MatrixCell>,
    /// Every seed's output merged (exact counter sums, fixed fold
    /// order), i.e. the scenario measured across `cells.len()`
    /// independent universes.
    pub pooled: ExperimentOutput,
}

/// A completed scenarios × seeds sweep.
pub struct MatrixOutput {
    /// Scenario rows, in the caller's scenario order.
    pub scenarios: Vec<MatrixScenario>,
}

/// Runs every scenario under every seed. Each cell goes through the
/// sharded runner (`shards` worker threads; results are byte-identical
/// for every value). `duration` optionally scales each run, exactly like
/// `repro --days`; validation has already happened when the specs were
/// built/loaded, and [`ScenarioSpec::config`] re-asserts.
///
/// Cells execute in deterministic order (scenario-major, then seed), so
/// the pooled merge — and therefore the rendered report — is bit-stable.
pub fn run_matrix(
    specs: &[ScenarioSpec],
    seeds: &[u64],
    duration: Option<SimDuration>,
    shards: usize,
) -> MatrixOutput {
    assert!(!specs.is_empty(), "matrix needs at least one scenario");
    assert!(!seeds.is_empty(), "matrix needs at least one seed");
    let scenarios = specs
        .iter()
        .map(|spec| {
            let outputs: Vec<ExperimentOutput> =
                seeds.iter().map(|&seed| spec.run_sharded(seed, duration, shards)).collect();
            let cells = seeds
                .iter()
                .zip(&outputs)
                .map(|(&seed, out)| MatrixCell {
                    seed,
                    fingerprint: out.fingerprint(),
                    measure_legs: out.measure_legs,
                    discarded: out.discarded(),
                })
                .collect();
            let pooled = merge_outputs(outputs);
            MatrixScenario {
                scenario: spec.name.clone(),
                spec_digest: spec.digest(),
                mesh_k: spec.topology.mesh_k(),
                cells,
                pooled,
            }
        })
        .collect();
    MatrixOutput { scenarios }
}

fn fmt_delta(v: Option<f64>) -> String {
    match v {
        Some(d) => format!("{d:+.2}"),
        None => "-".to_string(),
    }
}

/// The L(j) column value for a method's best-of-first-j curve. Single-
/// and two-leg methods have shorter curves than a k-redundant sibling
/// in the same set: past their own depth the curve is flat, so the last
/// point repeats. An *empty* curve — a method that never measured — is
/// `None`, not `0.00`: zero loss is the best possible reading, and a
/// renderer printing it for missing data would fabricate a perfect
/// method. Shared by the matrix report and `repro`'s single-scenario
/// depth table so the semantics cannot drift apart.
pub fn best_of_first_point(curve: &[f64], j: usize) -> Option<f64> {
    curve.get(j - 1).or(curve.last()).copied()
}

/// Renders an L(j) column entry; missing data prints `-` (exactly like
/// the delta columns' treatment of an absent baseline), never `0.00`.
pub fn fmt_point(v: Option<f64>) -> String {
    match v {
        Some(p) => format!("{p:.2}"),
        None => "-".to_string(),
    }
}

/// Renders the comparative report: per scenario, the per-seed cell
/// fingerprints followed by a method table over the pooled universes —
/// end-to-end loss and latency with their deltas against the `direct`
/// row (falling back to `direct*`, the paper's inferred variant), and
/// the best-of-first-j loss columns for `j = 1..k`.
pub fn render_matrix(m: &MatrixOutput) -> String {
    let mut s = String::new();
    let seeds = m.scenarios.first().map_or(0, |sc| sc.cells.len());
    let _ = writeln!(
        s,
        "==== matrix: {} scenario(s) x {} seed(s) ====",
        m.scenarios.len(),
        seeds
    );
    for sc in &m.scenarios {
        let mesh = match sc.mesh_k {
            Some(k) => format!("  [sparse mesh k={k}]"),
            None => String::new(),
        };
        let _ = writeln!(s, "\n{}{mesh}", scenario_stamp(&sc.scenario, sc.spec_digest));
        for c in &sc.cells {
            let _ = writeln!(
                s,
                "  seed {:<6} fingerprint {:#018x}  {} legs, {} discarded",
                c.seed, c.fingerprint, c.measure_legs, c.discarded
            );
        }
        let out = &sc.pooled;
        let depth = out.loss.depth();
        let direct = resolve(out, "direct").map(|(idx, _)| out.loss.summary(idx));
        let mut header = format!(
            "  {:<14} {:>7} {:>8} {:>9} {:>9} {:>10}",
            "Type", "totlp", "Δtotlp", "lat(ms)", "Δlat", "samples"
        );
        for j in 1..=depth {
            let _ = write!(header, " {:>7}", format!("L({j})"));
        }
        let _ = writeln!(s, "{header}");
        for (idx, name) in out.names.iter().enumerate() {
            let sum = out.loss.summary(idx as u8);
            let curve = out.loss.best_of_first_pct(idx as u8);
            let mut row = format!(
                "  {:<14} {:>7.2} {:>8} {:>9.2} {:>9} {:>10}",
                name,
                sum.totlp,
                fmt_delta(direct.map(|d| sum.totlp - d.totlp)),
                sum.lat_ms,
                fmt_delta(direct.map(|d| sum.lat_ms - d.lat_ms)),
                sum.pairs,
            );
            for j in 1..=depth {
                let v = fmt_point(best_of_first_point(&curve, j));
                let _ = write!(row, " {v:>7}");
            }
            let _ = writeln!(s, "{row}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::{MethodSpec, MethodSetSpec};
    use crate::scenario::{Calibration, ImpairmentPlan, MethodsSpec, TopologySpec};
    use overlay::RouteTag;

    fn tiny_spec(methods: MethodsSpec) -> ScenarioSpec {
        ScenarioSpec {
            name: "tiny-matrix".to_string(),
            summary: "matrix unit-test scenario".to_string(),
            topology: TopologySpec::Synthetic { hosts: 4, edge_loss: 0.02 },
            methods,
            days: 0.02,
            horizon_days: 0.02,
            round_trip: false,
            impairments: ImpairmentPlan::none(),
            calibration: Calibration { flat_load: true, ..Calibration::default() },
            dissemination: crate::scenario::DisseminationSpec::FullSnapshot,
        }
    }

    fn triple_methods() -> MethodsSpec {
        MethodsSpec::Custom(MethodSetSpec {
            methods: vec![
                MethodSpec {
                    name: "direct".into(),
                    legs: vec![RouteTag::Direct],
                    gap_ms: 0.0,
                    distinct: false,
                    all_prior: false,
                },
                MethodSpec {
                    name: "triple".into(),
                    legs: vec![RouteTag::Direct, RouteTag::Rand, RouteTag::Rand],
                    gap_ms: 0.0,
                    distinct: true,
                    all_prior: false,
                },
            ],
            views: Vec::new(),
        })
    }

    #[test]
    fn matrix_runs_every_cell_and_pools_per_scenario() {
        let specs = vec![tiny_spec(MethodsSpec::RonNarrow)];
        let m = run_matrix(&specs, &[1, 2], None, 1);
        assert_eq!(m.scenarios.len(), 1);
        let sc = &m.scenarios[0];
        assert_eq!(sc.cells.len(), 2);
        assert_ne!(
            sc.cells[0].fingerprint, sc.cells[1].fingerprint,
            "different seeds explore different universes"
        );
        assert_eq!(
            sc.pooled.measure_legs,
            sc.cells.iter().map(|c| c.measure_legs).sum::<u64>(),
            "pooled output is the exact union of the cells"
        );
    }

    #[test]
    fn matrix_cells_are_shard_invariant() {
        let specs = vec![tiny_spec(MethodsSpec::RonNarrow)];
        let a = run_matrix(&specs, &[7], None, 1);
        let b = run_matrix(&specs, &[7], None, 4);
        assert_eq!(
            a.scenarios[0].cells[0].fingerprint,
            b.scenarios[0].cells[0].fingerprint
        );
        assert_eq!(render_matrix(&a), render_matrix(&b));
    }

    #[test]
    fn report_carries_best_of_first_j_columns_to_the_set_depth() {
        let specs = vec![tiny_spec(triple_methods())];
        let m = run_matrix(&specs, &[3], None, 1);
        assert_eq!(m.scenarios[0].pooled.loss.depth(), 3);
        let text = render_matrix(&m);
        for col in ["L(1)", "L(2)", "L(3)"] {
            assert!(text.contains(col), "missing column {col} in:\n{text}");
        }
        assert!(!text.contains("L(4)"), "no column past the set's depth");
        assert!(text.contains("triple"));
        assert!(text.contains("Δtotlp"));
        assert!(text.contains("fingerprint 0x"));
    }

    #[test]
    fn empty_curve_renders_missing_not_perfect() {
        // A method that never measured has no loss curve. 0.00 would
        // read as "perfect method"; the renderer must say "no data".
        assert_eq!(best_of_first_point(&[], 1), None);
        assert_eq!(best_of_first_point(&[], 4), None);
        assert_eq!(fmt_point(None), "-");
        assert_eq!(fmt_point(Some(0.0)), "0.00", "a real zero still renders as a number");
        // Flat-extension semantics are unchanged for real curves.
        assert_eq!(best_of_first_point(&[3.0, 1.5], 1), Some(3.0));
        assert_eq!(best_of_first_point(&[3.0, 1.5], 4), Some(1.5));
    }

    #[test]
    fn sparse_mesh_scenarios_are_labeled_in_the_matrix() {
        let mut spec = tiny_spec(MethodsSpec::RonNarrow);
        spec.name = "tiny-sparse".to_string();
        spec.topology = TopologySpec::SparseSynthetic { hosts: 6, edge_loss: 0.02, mesh_k: 2 };
        let m = run_matrix(&[spec], &[3], None, 1);
        assert_eq!(m.scenarios[0].mesh_k, Some(2));
        let text = render_matrix(&m);
        assert!(text.contains("[sparse mesh k=2]"), "missing mesh label in:\n{text}");
        // Clique scenarios stay unlabeled.
        let clique = run_matrix(&[tiny_spec(MethodsSpec::RonNarrow)], &[3], None, 1);
        assert!(!render_matrix(&clique).contains("sparse mesh"));
    }

    #[test]
    fn pair_sets_render_two_depth_columns() {
        let specs = vec![tiny_spec(MethodsSpec::RonNarrow)];
        let m = run_matrix(&specs, &[3], None, 1);
        let text = render_matrix(&m);
        assert!(text.contains("L(1)") && text.contains("L(2)") && !text.contains("L(3)"));
    }
}
