//! The routing-method registry (Table 4 and the dataset method lists).
//!
//! A *method* is what one probe measures: one to [`MAX_PROBE_LEGS`]
//! packets, each routed by a [`RouteTag`] tactic, optionally separated
//! by a fixed delay (`dd 10ms` / `dd 20ms`). A *view* is an inferred
//! single-packet method derived from one leg of a real method — the
//! paper marks these with an asterisk ("Items marked with an asterisk
//! were inferred from the first packet of a two-packet pair").
//!
//! Method sets are **data**: [`MethodSetSpec`] is the serde form a
//! scenario file carries, so a workload can probe 3- or 4-redundant
//! combinations the paper never ran without a code change. The compiled
//! presets below are just well-known spec instances.

use netsim::SimDuration;
use serde::{Deserialize, Serialize};
pub use overlay::{RouteTag, MAX_PROBE_LEGS};

/// One probing method.
///
/// Names are owned strings so method sets can be assembled at runtime
/// (scenario files, generated sweeps) instead of being `&'static`-bound
/// to the compiled-in presets.
#[derive(Debug, Clone)]
pub struct Method {
    /// Display name as the paper prints it.
    pub name: String,
    /// Route tactic per packet (1 to [`MAX_PROBE_LEGS`] entries).
    pub legs: Vec<RouteTag>,
    /// Delay between consecutive packets (0 = back-to-back).
    pub gap: SimDuration,
    /// Whether every copy after the first must take a path distinct
    /// from the first copy's (§3.2 multi-path pairs: true; the
    /// same-path dd probes: false).
    pub distinct: bool,
    /// Strengthens `distinct` for k > 2 probes: every copy avoids the
    /// paths of **all** earlier copies, not just the first copy's.
    /// False is the historical behavior (and the serde default), where
    /// copies beyond the second may share a detour with each other.
    pub all_prior: bool,
}

impl Method {
    /// A single-packet method.
    pub fn single(name: &str, tag: RouteTag) -> Method {
        Method {
            name: name.to_string(),
            legs: vec![tag],
            gap: SimDuration::ZERO,
            distinct: false,
            all_prior: false,
        }
    }

    /// A 2-redundant multi-path pair: copies must use distinct paths.
    pub fn pair(name: &str, a: RouteTag, b: RouteTag, gap: SimDuration) -> Method {
        Method {
            name: name.to_string(),
            legs: vec![a, b],
            gap,
            distinct: true,
            all_prior: false,
        }
    }

    /// A k-redundant multi-path probe: one copy per tag, consecutive
    /// copies `gap` apart, every copy after the first on a path distinct
    /// from the first copy's.
    pub fn redundant(name: &str, legs: Vec<RouteTag>, gap: SimDuration) -> Method {
        Method { name: name.to_string(), legs, gap, distinct: true, all_prior: false }
    }

    /// A k-redundant probe under full diversity: every copy avoids the
    /// paths of all earlier copies (best effort on small meshes).
    pub fn redundant_diverse(name: &str, legs: Vec<RouteTag>, gap: SimDuration) -> Method {
        Method { name: name.to_string(), legs, gap, distinct: true, all_prior: true }
    }

    /// A same-path pair (direct direct / dd 10 ms / dd 20 ms).
    pub fn same_path(name: &str, gap: SimDuration) -> Method {
        Method {
            name: name.to_string(),
            legs: vec![RouteTag::Direct, RouteTag::Direct],
            gap,
            distinct: false,
            all_prior: false,
        }
    }
}

/// An inferred single-packet view of one leg of a real method.
#[derive(Debug, Clone)]
pub struct View {
    /// Display name (`direct*`, `lat*`).
    pub name: String,
    /// Index of the source method in [`MethodSet::methods`].
    pub source: u8,
    /// Which leg to extract.
    pub leg: u8,
}

/// The methods a dataset sends, plus its inferred views.
#[derive(Debug, Clone)]
pub struct MethodSet {
    /// Actually transmitted probe types.
    pub methods: Vec<Method>,
    /// Inferred single-leg views.
    pub views: Vec<View>,
}

impl MethodSet {
    /// Total analysis-method count (real + views). Views get indices
    /// `methods.len()..`.
    pub fn total(&self) -> usize {
        self.methods.len() + self.views.len()
    }

    /// Display names in analysis-method id order, borrowed.
    pub fn iter_names(&self) -> impl Iterator<Item = &str> {
        self.methods
            .iter()
            .map(|m| m.name.as_str())
            .chain(self.views.iter().map(|v| v.name.as_str()))
    }

    /// Display names indexed by analysis-method id.
    pub fn names(&self) -> Vec<String> {
        self.iter_names().map(str::to_string).collect()
    }

    /// Analysis-method id by display name. Iterates borrowed names —
    /// this is hot in report rendering, where the old owned-`names()`
    /// round trip re-allocated the full list per lookup.
    pub fn index_of(&self, name: &str) -> Option<u8> {
        self.iter_names().position(|n| n == name).map(|i| i as u8)
    }

    /// The redundancy degree: the maximum copies any method sends
    /// (views are single-packet and never raise it). At least 1.
    pub fn max_legs(&self) -> usize {
        self.methods.iter().map(|m| m.legs.len()).max().unwrap_or(1).max(1)
    }

    /// Structural validation of a built set — the single source of truth
    /// for every path a method set can arrive by (compiled presets,
    /// `MethodSetSpec` from a scenario file, programmatic construction):
    /// leg counts within the wire cap, probe spans within the collector
    /// window, unique names, in-range view references, and a total that
    /// fits the u8 method-id space.
    pub fn validate(&self) -> Result<(), String> {
        if self.methods.is_empty() {
            return Err("`methods` must not be empty".to_string());
        }
        if self.total() > u8::MAX as usize {
            return Err(format!(
                "`methods` + `views` must fit the u8 method-id space (at most {}), got {}",
                u8::MAX,
                self.total()
            ));
        }
        for m in &self.methods {
            if m.name.is_empty() {
                return Err("method `name` must not be empty".to_string());
            }
            if m.legs.is_empty() || m.legs.len() > MAX_PROBE_LEGS {
                return Err(format!(
                    "method `{}` must send 1 to {MAX_PROBE_LEGS} legs, got {}",
                    m.name,
                    m.legs.len()
                ));
            }
            if m.distinct && m.legs.len() < 2 {
                return Err(format!("method `{}` is `distinct` but sends a single copy", m.name));
            }
            if m.all_prior && !m.distinct {
                // all_prior is a strengthening of distinct; alone it
                // would promise diversity the first copy never asked for.
                return Err(format!(
                    "method `{}` sets `all_prior` without `distinct`",
                    m.name
                ));
            }
            // Leg i departs i gaps after the first copy, but the
            // collector resolves the probe one receive window (60 s by
            // default) after that first copy: a straggler leg would
            // split the probe id into partial outcomes. Cap the whole
            // span at 10 s — far inside the window (delays are bounded
            // at a few seconds), far above the paper's 10–20 ms gaps.
            // Checked multiply: an absurd gap (e.g. a saturated build
            // from a huge `gap_ms`) must yield this error, not a
            // debug-build overflow panic.
            let span_us = m.gap.as_micros().checked_mul(m.legs.len() as u64 - 1);
            if span_us.is_none_or(|s| s > SimDuration::from_secs(10).as_micros()) {
                return Err(format!(
                    "method `{}` spans {} from first to last copy ((legs - 1) x gap; \
                     at most 10s, or the collector's receive window would close mid-probe)",
                    m.name,
                    span_us.map_or_else(|| "an overflowing time".to_string(), |s| {
                        SimDuration::from_micros(s).to_string()
                    })
                ));
            }
        }
        for v in &self.views {
            if v.name.is_empty() {
                return Err("view `name` must not be empty".to_string());
            }
            let Some(source) = self.methods.get(v.source as usize) else {
                return Err(format!(
                    "view `{}` references method {} but only {} exist",
                    v.name,
                    v.source,
                    self.methods.len()
                ));
            };
            if v.leg as usize >= source.legs.len() {
                return Err(format!(
                    "view `{}` references leg {} of `{}`, which sends {} legs",
                    v.name,
                    v.leg,
                    source.name,
                    source.legs.len()
                ));
            }
        }
        let mut names: Vec<&str> = self.iter_names().collect();
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!("duplicate method/view name `{}`", w[0]));
        }
        Ok(())
    }

    /// The RON2003 method set (§4, "six sets of probes" plus the two
    /// inferred rows of Table 5).
    pub fn ron2003() -> MethodSet {
        let methods = vec![
            Method::single("loss", RouteTag::Loss),
            Method::pair("direct rand", RouteTag::Direct, RouteTag::Rand, SimDuration::ZERO),
            // Leg order chosen to match Table 5's numbers: the 1lp column
            // of "lat loss" equals the lat* row exactly, so the first
            // copy rides the latency-optimised route and the second rides
            // the loss-optimised route on a distinct path.
            Method::pair("lat loss", RouteTag::Lat, RouteTag::Loss, SimDuration::ZERO),
            Method::same_path("direct direct", SimDuration::ZERO),
            Method::same_path("dd 10 ms", SimDuration::from_millis(10)),
            Method::same_path("dd 20 ms", SimDuration::from_millis(20)),
        ];
        let views = vec![
            View { name: "direct*".into(), source: 1, leg: 0 },
            View { name: "lat*".into(), source: 2, leg: 0 },
        ];
        MethodSet { methods, views }
    }

    /// The RONnarrow 2002 method set: "one-way samples for three routing
    /// methods" (plus the same two inferred rows for Table 5's 2002
    /// half).
    pub fn ron_narrow() -> MethodSet {
        let methods = vec![
            Method::single("loss", RouteTag::Loss),
            Method::pair("direct rand", RouteTag::Direct, RouteTag::Rand, SimDuration::ZERO),
            Method::pair("lat loss", RouteTag::Lat, RouteTag::Loss, SimDuration::ZERO),
        ];
        let views = vec![
            View { name: "direct*".into(), source: 1, leg: 0 },
            View { name: "lat*".into(), source: 2, leg: 0 },
        ];
        MethodSet { methods, views }
    }

    /// The RONwide 2002 method set: the twelve round-trip route
    /// combinations of Table 7.
    pub fn ron_wide() -> MethodSet {
        use RouteTag::*;
        let z = SimDuration::ZERO;
        let methods = vec![
            Method::single("direct", Direct),
            Method::single("rand", Rand),
            Method::single("lat", Lat),
            Method::single("loss", Loss),
            Method::same_path("direct direct", z),
            Method::pair("rand rand", Rand, Rand, z),
            Method::pair("direct rand", Direct, Rand, z),
            Method::pair("direct lat", Direct, Lat, z),
            Method::pair("direct loss", Direct, Loss, z),
            Method::pair("rand lat", Rand, Lat, z),
            Method::pair("rand loss", Rand, Loss, z),
            Method::pair("lat loss", Lat, Loss, z),
        ];
        MethodSet { methods, views: Vec::new() }
    }
}

/// Serde form of one probing method, as scenario files spell it.
///
/// The gap is carried in milliseconds (`gap_ms`) rather than an opaque
/// duration so hand-written files stay readable.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSpec {
    /// Display name (must be unique across the set, views included).
    pub name: String,
    /// Route tactic per copy, first to last (1 to [`MAX_PROBE_LEGS`]).
    pub legs: Vec<RouteTag>,
    /// Delay between consecutive copies, milliseconds (0 = back-to-back).
    pub gap_ms: f64,
    /// Whether copies after the first must avoid the first copy's path.
    pub distinct: bool,
    /// Full-diversity strengthening of `distinct`: every copy avoids
    /// **all** earlier copies' paths. Optional in files and omitted from
    /// JSON when false, so every pre-existing spec keeps its canonical
    /// serialization — and therefore its digest and goldens.
    pub all_prior: bool,
}

// Hand-written so the `all_prior` key only exists on the wire when it
// is true: the derive would emit `"all_prior":false` into every spec,
// shifting ScenarioSpec::digest for all existing scenarios and
// invalidating their golden fingerprints.
impl serde::Serialize for MethodSpec {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("name".to_string(), self.name.to_value()),
            ("legs".to_string(), self.legs.to_value()),
            ("gap_ms".to_string(), self.gap_ms.to_value()),
            ("distinct".to_string(), self.distinct.to_value()),
        ];
        if self.all_prior {
            fields.push(("all_prior".to_string(), self.all_prior.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl serde::Deserialize for MethodSpec {
    fn from_value(v: &serde::Value) -> Result<MethodSpec, serde::Error> {
        let serde::Value::Map(entries) = v else {
            return Err(serde::Error::new("MethodSpec: expected a map"));
        };
        const FIELDS: [&str; 5] = ["name", "legs", "gap_ms", "distinct", "all_prior"];
        for (key, _) in entries {
            if !FIELDS.contains(&key.as_str()) {
                return Err(serde::Error::new(format!("MethodSpec: unknown field `{key}`")));
            }
        }
        let all_prior = match entries.iter().find(|(key, _)| key == "all_prior") {
            Some((_, val)) => bool::from_value(val)?,
            None => false,
        };
        Ok(MethodSpec {
            name: Deserialize::from_value(v.field("name")?)?,
            legs: Deserialize::from_value(v.field("legs")?)?,
            gap_ms: Deserialize::from_value(v.field("gap_ms")?)?,
            distinct: Deserialize::from_value(v.field("distinct")?)?,
            all_prior,
        })
    }
}

/// Serde form of an inferred single-packet view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewSpec {
    /// Display name (the paper's `*` convention is just a convention).
    pub name: String,
    /// Index of the source method within the spec's `methods` list.
    pub source: u8,
    /// Which leg of the source method to extract.
    pub leg: u8,
}

/// A complete user-defined method set: what a scenario file carries when
/// it opts out of the compiled presets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodSetSpec {
    /// Actually transmitted probe types.
    pub methods: Vec<MethodSpec>,
    /// Inferred single-leg views.
    pub views: Vec<ViewSpec>,
}

impl MethodSetSpec {
    /// Semantic validation. The serde layer checks only what the built
    /// form cannot express — a non-finite or negative `gap_ms` (the
    /// build would silently round it into a duration) — then delegates
    /// every structural rule to [`MethodSet::validate`], the single
    /// validator all construction paths share. Scenario resolution runs
    /// this before anything reaches the runner, so an oversized or
    /// dangling spec fails with a named field instead of a panic deep
    /// inside the experiment.
    pub fn validate(&self) -> Result<(), String> {
        for (i, m) in self.methods.iter().enumerate() {
            if !(m.gap_ms.is_finite() && m.gap_ms >= 0.0) {
                return Err(format!(
                    "`methods[{i}].gap_ms` must be finite and non-negative, got {}",
                    m.gap_ms
                ));
            }
        }
        self.build().validate()
    }

    /// Total analysis-method count (real + views).
    pub fn total(&self) -> usize {
        self.methods.len() + self.views.len()
    }

    /// Materializes the runnable method set. Call
    /// [`validate`](Self::validate) first; this does not re-check.
    pub fn build(&self) -> MethodSet {
        MethodSet {
            methods: self
                .methods
                .iter()
                .map(|m| Method {
                    name: m.name.clone(),
                    legs: m.legs.clone(),
                    gap: SimDuration::from_micros((m.gap_ms * 1_000.0).round() as u64),
                    distinct: m.distinct,
                    all_prior: m.all_prior,
                })
                .collect(),
            views: self
                .views
                .iter()
                .map(|v| View { name: v.name.clone(), source: v.source, leg: v.leg })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ron2003_has_six_probe_sets_and_two_views() {
        let s = MethodSet::ron2003();
        assert_eq!(s.methods.len(), 6);
        assert_eq!(s.views.len(), 2);
        assert_eq!(s.total(), 8, "the eight rows of Table 5 (2003)");
        // dd methods must share tactics but differ in gap.
        let dd = s.index_of("direct direct").unwrap() as usize;
        let dd10 = s.index_of("dd 10 ms").unwrap() as usize;
        assert_eq!(s.methods[dd].legs, s.methods[dd10].legs);
        assert_eq!(s.methods[dd].gap, SimDuration::ZERO);
        assert_eq!(s.methods[dd10].gap, SimDuration::from_millis(10));
    }

    #[test]
    fn views_reference_the_documented_legs() {
        let s = MethodSet::ron2003();
        let direct_star = &s.views[0];
        assert_eq!(direct_star.name, "direct*");
        assert_eq!(s.methods[direct_star.source as usize].name, "direct rand");
        assert_eq!(direct_star.leg, 0, "inferred from the FIRST packet");
        let lat_star = &s.views[1];
        assert_eq!(s.methods[lat_star.source as usize].name, "lat loss");
        assert_eq!(lat_star.leg, 0, "Table 5: lat loss 1lp == lat* exactly");
    }

    #[test]
    fn lat_loss_sends_lat_first_and_requires_distinct_paths() {
        let s = MethodSet::ron2003();
        let ll = &s.methods[s.index_of("lat loss").unwrap() as usize];
        assert_eq!(ll.legs, vec![RouteTag::Lat, RouteTag::Loss]);
        assert!(ll.distinct);
        let dd = &s.methods[s.index_of("direct direct").unwrap() as usize];
        assert!(!dd.distinct, "dd probes intentionally share the path");
    }

    #[test]
    fn ron_wide_matches_table_7() {
        let s = MethodSet::ron_wide();
        assert_eq!(s.methods.len(), 12);
        assert!(s.views.is_empty());
        for name in [
            "direct", "rand", "lat", "loss", "direct direct", "rand rand", "direct rand",
            "direct lat", "direct loss", "rand lat", "rand loss", "lat loss",
        ] {
            assert!(s.index_of(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn names_cover_views() {
        let s = MethodSet::ron_narrow();
        let names = s.names();
        assert_eq!(names.len(), 5);
        assert_eq!(s.index_of("direct*"), Some(3));
        assert_eq!(s.index_of("lat*"), Some(4));
        assert_eq!(s.index_of("bogus"), None);
    }

    #[test]
    fn max_legs_tracks_the_widest_method() {
        assert_eq!(MethodSet::ron2003().max_legs(), 2);
        let mut s = MethodSet::ron_narrow();
        s.methods.push(Method::redundant(
            "triple",
            vec![RouteTag::Direct, RouteTag::Rand, RouteTag::Loss],
            SimDuration::ZERO,
        ));
        assert_eq!(s.max_legs(), 3);
        let empty = MethodSet { methods: Vec::new(), views: Vec::new() };
        assert_eq!(empty.max_legs(), 1, "degenerate sets still have depth 1");
    }

    fn triple_spec() -> MethodSetSpec {
        MethodSetSpec {
            methods: vec![
                MethodSpec {
                    name: "direct".into(),
                    legs: vec![RouteTag::Direct],
                    gap_ms: 0.0,
                    distinct: false,
                    all_prior: false,
                },
                MethodSpec {
                    name: "triple".into(),
                    legs: vec![RouteTag::Direct, RouteTag::Rand, RouteTag::Loss],
                    gap_ms: 10.0,
                    distinct: true,
                    all_prior: false,
                },
            ],
            views: vec![ViewSpec { name: "triple[0]*".into(), source: 1, leg: 0 }],
        }
    }

    #[test]
    fn method_set_spec_builds_what_it_says() {
        let spec = triple_spec();
        spec.validate().expect("valid spec");
        let set = spec.build();
        assert_eq!(set.total(), 3);
        assert_eq!(set.max_legs(), 3);
        let t = &set.methods[set.index_of("triple").unwrap() as usize];
        assert_eq!(t.legs, vec![RouteTag::Direct, RouteTag::Rand, RouteTag::Loss]);
        assert_eq!(t.gap, SimDuration::from_millis(10));
        assert!(t.distinct);
        assert_eq!(set.index_of("triple[0]*"), Some(2));
    }

    #[test]
    fn method_set_spec_validation_names_the_offence() {
        let err = |f: fn(&mut MethodSetSpec)| {
            let mut s = triple_spec();
            f(&mut s);
            s.validate().unwrap_err()
        };
        assert!(err(|s| s.methods.clear()).contains("must not be empty"));
        assert!(err(|s| s.methods[1].legs = vec![RouteTag::Direct; MAX_PROBE_LEGS + 1])
            .contains("1 to 4 legs"));
        assert!(err(|s| s.methods[1].legs.clear()).contains("1 to 4 legs"));
        assert!(err(|s| s.methods[0].gap_ms = f64::NAN).contains("gap_ms"));
        assert!(err(|s| s.methods[0].gap_ms = -1.0).contains("gap_ms"));
        // A 3-leg probe at 6 s gaps spans 12 s — past the 10 s cap that
        // keeps every leg inside the collector's receive window.
        assert!(err(|s| s.methods[1].gap_ms = 6_000.0).contains("receive window"));
        // A saturated build from an absurd gap must error, not overflow.
        assert!(err(|s| s.methods[1].gap_ms = 2.0e16).contains("receive window"));
        assert!(err(|s| s.methods[0].distinct = true).contains("single copy"));
        assert!(err(|s| s.views[0].source = 9).contains("only 2 exist"));
        assert!(err(|s| s.views[0].leg = 3).contains("sends 3 legs"));
        assert!(err(|s| s.views[0].name = "triple".into()).contains("duplicate"));
        assert!(err(|s| s.methods[0].name = String::new()).contains("name"));
        let mut oversize = triple_spec();
        oversize.views = (0..255)
            .map(|i| ViewSpec { name: format!("v{i}"), source: 1, leg: 0 })
            .collect();
        assert!(oversize.validate().unwrap_err().contains("u8 method-id space"));
    }

    #[test]
    fn all_prior_requires_distinct() {
        let mut s = triple_spec();
        s.methods[1].all_prior = true;
        s.methods[1].distinct = false;
        assert!(s.validate().unwrap_err().contains("all_prior"));
        s.methods[1].distinct = true;
        assert!(s.validate().is_ok(), "all_prior + distinct is the valid combination");
    }

    #[test]
    fn all_prior_is_omitted_from_the_wire_when_false() {
        // Existing scenario files (and their digests) predate the knob:
        // a false `all_prior` must serialize to the exact historical JSON.
        let spec = MethodSpec {
            name: "dd".into(),
            legs: vec![RouteTag::Direct, RouteTag::Direct],
            gap_ms: 0.0,
            distinct: false,
            all_prior: false,
        };
        let json = serde_json::to_string(&spec).unwrap();
        assert_eq!(
            json,
            r#"{"name":"dd","legs":["Direct","Direct"],"gap_ms":0.0,"distinct":false}"#
        );
        let back: MethodSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn all_prior_round_trips_when_set() {
        let spec = MethodSpec {
            name: "r3!".into(),
            legs: vec![RouteTag::Rand; 3],
            gap_ms: 10.0,
            distinct: true,
            all_prior: true,
        };
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains(r#""all_prior":true"#));
        let back: MethodSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        // Unknown keys still rejected (strict wire).
        assert!(serde_json::from_str::<MethodSpec>(
            r#"{"name":"x","legs":["Rand"],"gap_ms":0,"distinct":false,"al_prior":true}"#
        )
        .is_err());
    }

    #[test]
    fn redundant_diverse_constructor_sets_both_flags() {
        let m = Method::redundant_diverse(
            "r4!",
            vec![RouteTag::Rand; 4],
            SimDuration::from_millis(10),
        );
        assert!(m.distinct && m.all_prior);
        let set = MethodSet { methods: vec![m], views: Vec::new() };
        assert!(set.validate().is_ok());
    }

    #[test]
    fn built_sets_share_the_same_validator() {
        // Programmatic construction (no serde involved) flows through
        // MethodSet::validate too — the wire cap holds everywhere.
        let mut s = MethodSet::ron2003();
        assert!(s.validate().is_ok(), "presets must validate");
        s.methods.push(Method::redundant(
            "quint",
            vec![RouteTag::Rand; MAX_PROBE_LEGS + 1],
            SimDuration::ZERO,
        ));
        assert!(s.validate().unwrap_err().contains("1 to 4 legs"));
    }
}
