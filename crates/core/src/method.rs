//! The routing-method registry (Table 4 and the dataset method lists).
//!
//! A *method* is what one probe measures: one or two packets, each routed
//! by a [`RouteTag`] tactic, optionally separated by a fixed delay
//! (`dd 10ms` / `dd 20ms`). A *view* is an inferred single-packet method
//! derived from one leg of a real method — the paper marks these with an
//! asterisk ("Items marked with an asterisk were inferred from the first
//! packet of a two-packet pair").

use netsim::SimDuration;
pub use overlay::RouteTag;

/// One probing method.
///
/// Names are owned strings so method sets can be assembled at runtime
/// (scenario files, generated sweeps) instead of being `&'static`-bound
/// to the compiled-in presets.
#[derive(Debug, Clone)]
pub struct Method {
    /// Display name as the paper prints it.
    pub name: String,
    /// Route tactic per packet (1 or 2 entries).
    pub legs: Vec<RouteTag>,
    /// Delay between the two packets (0 = back-to-back).
    pub gap: SimDuration,
    /// Whether the second copy must take a path distinct from the first
    /// (§3.2 multi-path pairs: true; the same-path dd probes: false).
    pub distinct: bool,
}

impl Method {
    fn single(name: &str, tag: RouteTag) -> Method {
        Method { name: name.to_string(), legs: vec![tag], gap: SimDuration::ZERO, distinct: false }
    }

    /// A 2-redundant multi-path pair: copies must use distinct paths.
    fn pair(name: &str, a: RouteTag, b: RouteTag, gap: SimDuration) -> Method {
        Method { name: name.to_string(), legs: vec![a, b], gap, distinct: true }
    }

    /// A same-path pair (direct direct / dd 10 ms / dd 20 ms).
    fn same_path(name: &str, gap: SimDuration) -> Method {
        Method {
            name: name.to_string(),
            legs: vec![RouteTag::Direct, RouteTag::Direct],
            gap,
            distinct: false,
        }
    }
}

/// An inferred single-packet view of one leg of a real method.
#[derive(Debug, Clone)]
pub struct View {
    /// Display name (`direct*`, `lat*`).
    pub name: String,
    /// Index of the source method in [`MethodSet::methods`].
    pub source: u8,
    /// Which leg to extract.
    pub leg: u8,
}

/// The methods a dataset sends, plus its inferred views.
#[derive(Debug, Clone)]
pub struct MethodSet {
    /// Actually transmitted probe types.
    pub methods: Vec<Method>,
    /// Inferred single-leg views.
    pub views: Vec<View>,
}

impl MethodSet {
    /// Total analysis-method count (real + views). Views get indices
    /// `methods.len()..`.
    pub fn total(&self) -> usize {
        self.methods.len() + self.views.len()
    }

    /// Display names indexed by analysis-method id.
    pub fn names(&self) -> Vec<String> {
        self.methods
            .iter()
            .map(|m| m.name.clone())
            .chain(self.views.iter().map(|v| v.name.clone()))
            .collect()
    }

    /// Analysis-method id by display name.
    pub fn index_of(&self, name: &str) -> Option<u8> {
        self.names().iter().position(|n| *n == name).map(|i| i as u8)
    }

    /// The RON2003 method set (§4, "six sets of probes" plus the two
    /// inferred rows of Table 5).
    pub fn ron2003() -> MethodSet {
        let methods = vec![
            Method::single("loss", RouteTag::Loss),
            Method::pair("direct rand", RouteTag::Direct, RouteTag::Rand, SimDuration::ZERO),
            // Leg order chosen to match Table 5's numbers: the 1lp column
            // of "lat loss" equals the lat* row exactly, so the first
            // copy rides the latency-optimised route and the second rides
            // the loss-optimised route on a distinct path.
            Method::pair("lat loss", RouteTag::Lat, RouteTag::Loss, SimDuration::ZERO),
            Method::same_path("direct direct", SimDuration::ZERO),
            Method::same_path("dd 10 ms", SimDuration::from_millis(10)),
            Method::same_path("dd 20 ms", SimDuration::from_millis(20)),
        ];
        let views = vec![
            View { name: "direct*".into(), source: 1, leg: 0 },
            View { name: "lat*".into(), source: 2, leg: 0 },
        ];
        MethodSet { methods, views }
    }

    /// The RONnarrow 2002 method set: "one-way samples for three routing
    /// methods" (plus the same two inferred rows for Table 5's 2002
    /// half).
    pub fn ron_narrow() -> MethodSet {
        let methods = vec![
            Method::single("loss", RouteTag::Loss),
            Method::pair("direct rand", RouteTag::Direct, RouteTag::Rand, SimDuration::ZERO),
            Method::pair("lat loss", RouteTag::Lat, RouteTag::Loss, SimDuration::ZERO),
        ];
        let views = vec![
            View { name: "direct*".into(), source: 1, leg: 0 },
            View { name: "lat*".into(), source: 2, leg: 0 },
        ];
        MethodSet { methods, views }
    }

    /// The RONwide 2002 method set: the twelve round-trip route
    /// combinations of Table 7.
    pub fn ron_wide() -> MethodSet {
        use RouteTag::*;
        let z = SimDuration::ZERO;
        let methods = vec![
            Method::single("direct", Direct),
            Method::single("rand", Rand),
            Method::single("lat", Lat),
            Method::single("loss", Loss),
            Method::same_path("direct direct", z),
            Method::pair("rand rand", Rand, Rand, z),
            Method::pair("direct rand", Direct, Rand, z),
            Method::pair("direct lat", Direct, Lat, z),
            Method::pair("direct loss", Direct, Loss, z),
            Method::pair("rand lat", Rand, Lat, z),
            Method::pair("rand loss", Rand, Loss, z),
            Method::pair("lat loss", Lat, Loss, z),
        ];
        MethodSet { methods, views: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ron2003_has_six_probe_sets_and_two_views() {
        let s = MethodSet::ron2003();
        assert_eq!(s.methods.len(), 6);
        assert_eq!(s.views.len(), 2);
        assert_eq!(s.total(), 8, "the eight rows of Table 5 (2003)");
        // dd methods must share tactics but differ in gap.
        let dd = s.index_of("direct direct").unwrap() as usize;
        let dd10 = s.index_of("dd 10 ms").unwrap() as usize;
        assert_eq!(s.methods[dd].legs, s.methods[dd10].legs);
        assert_eq!(s.methods[dd].gap, SimDuration::ZERO);
        assert_eq!(s.methods[dd10].gap, SimDuration::from_millis(10));
    }

    #[test]
    fn views_reference_the_documented_legs() {
        let s = MethodSet::ron2003();
        let direct_star = &s.views[0];
        assert_eq!(direct_star.name, "direct*");
        assert_eq!(s.methods[direct_star.source as usize].name, "direct rand");
        assert_eq!(direct_star.leg, 0, "inferred from the FIRST packet");
        let lat_star = &s.views[1];
        assert_eq!(s.methods[lat_star.source as usize].name, "lat loss");
        assert_eq!(lat_star.leg, 0, "Table 5: lat loss 1lp == lat* exactly");
    }

    #[test]
    fn lat_loss_sends_lat_first_and_requires_distinct_paths() {
        let s = MethodSet::ron2003();
        let ll = &s.methods[s.index_of("lat loss").unwrap() as usize];
        assert_eq!(ll.legs, vec![RouteTag::Lat, RouteTag::Loss]);
        assert!(ll.distinct);
        let dd = &s.methods[s.index_of("direct direct").unwrap() as usize];
        assert!(!dd.distinct, "dd probes intentionally share the path");
    }

    #[test]
    fn ron_wide_matches_table_7() {
        let s = MethodSet::ron_wide();
        assert_eq!(s.methods.len(), 12);
        assert!(s.views.is_empty());
        for name in [
            "direct", "rand", "lat", "loss", "direct direct", "rand rand", "direct rand",
            "direct lat", "direct loss", "rand lat", "rand loss", "lat loss",
        ] {
            assert!(s.index_of(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn names_cover_views() {
        let s = MethodSet::ron_narrow();
        let names = s.names();
        assert_eq!(names.len(), 5);
        assert_eq!(s.index_of("direct*"), Some(3));
        assert_eq!(s.index_of("lat*"), Some(4));
        assert_eq!(s.index_of("bogus"), None);
    }
}
