//! Assembling experiment output into the paper's tables and figures.
//!
//! Each function regenerates one artifact of the evaluation section; the
//! `repro` binary in `mpath-bench` prints them all side by side with the
//! paper's published values.

use crate::experiment::ExperimentOutput;
use analysis::{Cdf, Figure, Series, Table5Row, Table6, Table7Row};
use netsim::HostId;

/// Merges per-slice experiment outputs, in the order given, into one
/// campaign report.
///
/// Every counter is an exact sum; the f64 latency sums fold in the
/// caller's order, so a fixed input order (ascending slice index — see
/// [`crate::shard`]) gives a bit-stable result. The merged duration is
/// the sum of slice durations, i.e. the configured campaign duration.
///
/// Panics when `outputs` is empty or the outputs disagree on shape
/// (host count, method names).
pub fn merge_outputs(outputs: Vec<ExperimentOutput>) -> ExperimentOutput {
    let mut it = outputs.into_iter();
    let mut acc = it.next().expect("merge_outputs needs at least one slice");
    for o in it {
        assert_eq!(acc.names, o.names, "slices must share the method registry");
        assert_eq!(acc.n, o.n, "slices must share the testbed");
        assert_eq!(acc.scenario, o.scenario, "slices must come from one scenario");
        assert_eq!(acc.spec_digest, o.spec_digest, "slices must share the scenario spec");
        acc.loss.merge(&o.loss);
        acc.win20.merge(&o.win20);
        acc.win60.merge(&o.win60);
        acc.net.merge(&o.net);
        acc.overlay_probes += o.overlay_probes;
        acc.measure_legs += o.measure_legs;
        acc.collector.merge(&o.collector);
        for (a, b) in acc.route_usage.iter_mut().zip(o.route_usage) {
            a.0 += b.0;
            a.1 += b.1;
        }
        acc.duration += o.duration;
    }
    acc
}

/// Resolves a method name, falling back to its inferred (`*`) variant —
/// in RON2003 `direct` exists only as `direct*`.
pub fn resolve(out: &ExperimentOutput, name: &str) -> Option<(u8, String)> {
    if let Some(i) = out.index_of(name) {
        return Some((i, name.to_string()));
    }
    let starred = format!("{name}*");
    out.index_of(&starred).map(|i| (i, starred))
}

/// Table 5 rows in the paper's order for a one-way dataset.
pub fn table5(out: &ExperimentOutput) -> Vec<Table5Row> {
    let order = [
        "direct", "lat", "loss", "direct rand", "lat loss", "direct direct", "dd 10 ms",
        "dd 20 ms",
    ];
    order
        .iter()
        .filter_map(|name| {
            let (idx, shown) = resolve(out, name)?;
            Some(Table5Row { name: shown, summary: out.loss.summary(idx) })
        })
        .collect()
}

/// Table 6: hour-window loss counts in the paper's column order.
pub fn table6(out: &ExperimentOutput) -> Table6 {
    let order = [
        "direct", "direct direct", "dd 10 ms", "dd 20 ms", "lat", "loss", "direct rand",
        "lat loss",
    ];
    let mut methods = Vec::new();
    let mut counts = Vec::new();
    let mut totals = Vec::new();
    for name in order {
        if let Some((idx, shown)) = resolve(out, name) {
            methods.push(shown);
            counts.push(out.win60.threshold_counts(idx));
            totals.push(out.win60.window_count(idx));
        }
    }
    Table6 { methods, counts, totals }
}

/// Table 7 rows (RONwide round-trip dataset).
pub fn table7(out: &ExperimentOutput) -> Vec<Table7Row> {
    let order = [
        "direct", "rand", "lat", "loss", "direct direct", "rand rand", "direct rand",
        "direct lat", "direct loss", "rand lat", "rand loss", "lat loss",
    ];
    order
        .iter()
        .filter_map(|name| {
            let (idx, shown) = resolve(out, name)?;
            Some(Table7Row { name: shown, summary: out.loss.summary(idx) })
        })
        .collect()
}

/// Figure 2: CDF of long-term per-path loss rates (percent), one series
/// per dataset run.
pub fn fig2(runs: &[(&str, &ExperimentOutput)]) -> Figure {
    let mut fig = Figure::new(
        "Figure 2: CDF of long-term per-path loss rates",
        "loss_pct",
        "fraction_of_paths",
    );
    for (label, out) in runs {
        if let Some((idx, _)) = resolve(out, "direct") {
            let vals: Vec<f64> =
                out.loss.per_path_loss(idx).into_iter().map(|(_, _, r)| r * 100.0).collect();
            fig.push(Series::new(*label, Cdf::from_values(vals).points(200)));
        }
    }
    fig
}

/// Figure 3: CDF of 20-minute loss-rate samples per method.
pub fn fig3(out: &ExperimentOutput) -> Figure {
    let mut fig = Figure::new(
        "Figure 3: CDF of 20-minute loss rates",
        "loss_rate",
        "fraction_of_samples",
    );
    for name in
        ["direct", "loss", "direct direct", "direct rand", "lat loss", "dd 10 ms", "dd 20 ms"]
    {
        if let Some((idx, shown)) = resolve(out, name) {
            fig.push(Series::new(shown, out.win20.histogram(idx).cdf_points()));
        }
    }
    fig
}

/// Figure 4: CDF across paths of the second-packet conditional loss
/// probability, for the two-packet methods.
pub fn fig4(out: &ExperimentOutput) -> Figure {
    let mut fig = Figure::new(
        "Figure 4: CDF of per-path conditional loss probabilities",
        "clp_pct",
        "fraction_of_paths",
    );
    for name in ["direct direct", "direct rand", "dd 10 ms", "dd 20 ms"] {
        if let Some((idx, shown)) = resolve(out, name) {
            let vals = out.loss.per_path_clp(idx, 1);
            if !vals.is_empty() {
                fig.push(Series::new(shown, Cdf::from_values(vals).points(200)));
            }
        }
    }
    fig
}

/// Figure 5: CDF of per-path one-way latencies for paths whose direct
/// latency exceeds 50 ms.
pub fn fig5(out: &ExperimentOutput) -> Figure {
    let mut fig = Figure::new(
        "Figure 5: CDF of one-way latencies (paths over 50 ms)",
        "latency_ms",
        "fraction_of_paths",
    );
    let Some((direct_idx, _)) = resolve(out, "direct") else { return fig };
    // detlint: allow(nondet-iter) — membership probe only (`contains`
    // below); the series order is per_path_latency_ms's, never the set's.
    let slow: std::collections::HashSet<(HostId, HostId)> = out
        .loss
        .per_path_latency_ms(direct_idx)
        .into_iter()
        .filter(|&(_, _, ms)| ms > 50.0)
        .map(|(s, d, _)| (s, d))
        .collect();
    for name in ["lat loss", "lat", "direct rand", "direct", "loss"] {
        if let Some((idx, shown)) = resolve(out, name) {
            let vals: Vec<f64> = out
                .loss
                .per_path_latency_ms(idx)
                .into_iter()
                .filter(|(s, d, _)| slow.contains(&(*s, *d)))
                .map(|(_, _, ms)| ms)
                .collect();
            if !vals.is_empty() {
                fig.push(Series::new(shown, Cdf::from_values(vals).points(200)));
            }
        }
    }
    fig
}

/// Figure 6: the §5 design-space curves from the analytic model.
pub fn fig6(model: &crate::model::DesignModel, flow_bps: f64) -> Figure {
    let mut fig = Figure::new(
        "Figure 6: when to use reactive or redundant routing",
        "desired_improvement",
        "fraction_capacity_for_data",
    );
    let pts = model.figure6(flow_bps, 101);
    fig.push(Series::new(
        "reactive",
        pts.iter().filter(|p| !p.1.is_nan()).map(|p| (p.0, p.1)).collect(),
    ));
    fig.push(Series::new(
        "redundant",
        pts.iter().filter(|p| !p.2.is_nan()).map(|p| (p.0, p.2)).collect(),
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_experiment, ExperimentConfig};
    use crate::method::MethodSet;
    use crate::model::DesignModel;
    use crate::scenario::ScenarioRegistry;
    use netsim::{SimDuration, Topology};

    fn ron_wide_run(seed: u64, mins: u64) -> ExperimentOutput {
        ScenarioRegistry::builtin()
            .get("ron-wide")
            .unwrap()
            .run(seed, Some(SimDuration::from_mins(mins)))
    }

    fn tiny_run(seed: u64) -> ExperimentOutput {
        let topo = Topology::synthetic(4, 0.02, seed);
        let mut cfg = ExperimentConfig::new(MethodSet::ron2003());
        cfg.duration = SimDuration::from_mins(45);
        cfg.seed = seed;
        cfg.flat_load = true;
        run_experiment(topo, cfg)
    }

    #[test]
    fn table5_has_the_paper_rows() {
        let out = tiny_run(5);
        let rows = table5(&out);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "direct*", "lat*", "loss", "direct rand", "lat loss", "direct direct",
                "dd 10 ms", "dd 20 ms"
            ]
        );
    }

    #[test]
    fn table6_columns_resolve() {
        let out = tiny_run(6);
        let t = table6(&out);
        assert_eq!(t.methods.len(), 8);
        assert_eq!(t.counts.len(), 8);
        // Threshold counts are monotonically nonincreasing.
        for c in &t.counts {
            for w in c.windows(2) {
                assert!(w[1] <= w[0]);
            }
        }
    }

    #[test]
    fn table7_requires_ron_wide() {
        let out = ron_wide_run(7, 30);
        let rows = table7(&out);
        assert_eq!(rows.len(), 12);
    }

    #[test]
    fn figures_have_series() {
        let out = tiny_run(8);
        assert!(!fig3(&out).series.is_empty());
        let f2 = fig2(&[("test", &out)]);
        assert_eq!(f2.series.len(), 1);
        // fig4 may be sparse on tiny runs but must not panic.
        let _ = fig4(&out);
        let _ = fig5(&out);
        let f6 = fig6(&DesignModel::ron2003_defaults(), 64_000.0);
        assert_eq!(f6.series.len(), 2);
    }

    #[test]
    fn resolve_prefers_exact_name() {
        let out = ron_wide_run(9, 20);
        let (_, shown) = resolve(&out, "direct").unwrap();
        assert_eq!(shown, "direct", "RONwide has a real direct method");
    }
}
