//! The three datasets of Table 3 — now a thin shim over the scenario
//! registry.
//!
//! | dataset   | scenario name | hosts | days | probing                      |
//! |-----------|---------------|-------|------|------------------------------|
//! | RONnarrow | `ron-narrow`  | 17    | 4    | one-way, 3 methods           |
//! | RONwide   | `ron-wide`    | 17    | 5    | round-trip, 12 method combos |
//! | RON2003   | `ron2003`     | 30    | 14   | one-way, 6 probe sets        |
//!
//! The closed enum predates the declarative scenario API
//! ([`crate::scenario`]); every method now delegates to the equivalent
//! built-in [`ScenarioSpec`] so existing
//! call sites keep working while they migrate. New code should resolve
//! scenarios by name instead:
//!
//! ```
//! use mpath_core::scenario::ScenarioRegistry;
//! let registry = ScenarioRegistry::builtin();
//! let scenario = registry.get("ron2003").unwrap();
//! let cfg = scenario.config(1, None);
//! assert_eq!(cfg.scenario, "ron2003");
//! ```

use crate::experiment::{ExperimentConfig, ExperimentOutput};
use crate::method::MethodSet;
use crate::scenario::{ScenarioRegistry, ScenarioSpec};
use netsim::{SimDuration, Topology};

/// One of the paper's measurement campaigns.
#[deprecated(
    since = "0.2.0",
    note = "use `scenario::ScenarioRegistry::builtin()` with the scenario names \
            `ron2003` / `ron-narrow` / `ron-wide`"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// 30 hosts, 14 days, one-way, the six 2003 probe sets.
    Ron2003,
    /// 17 hosts, 4 days, one-way, three methods (2002).
    RonNarrow,
    /// 17 hosts, 5 days, round-trip, twelve combos (2002).
    RonWide,
}

#[allow(deprecated)]
impl Dataset {
    /// The dataset's name as the paper uses it.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Ron2003 => "RON2003",
            Dataset::RonNarrow => "RONnarrow",
            Dataset::RonWide => "RONwide",
        }
    }

    /// The registry name of the equivalent built-in scenario.
    pub fn scenario_name(&self) -> &'static str {
        match self {
            Dataset::Ron2003 => "ron2003",
            Dataset::RonNarrow => "ron-narrow",
            Dataset::RonWide => "ron-wide",
        }
    }

    /// The equivalent built-in scenario spec.
    pub fn scenario(&self) -> ScenarioSpec {
        ScenarioRegistry::builtin()
            .get(self.scenario_name())
            .expect("paper scenarios are always registered")
            .clone()
    }

    /// The paper's measurement duration for this dataset.
    pub fn paper_duration(&self) -> SimDuration {
        self.scenario().paper_duration()
    }

    /// Builds the era-appropriate testbed.
    pub fn topology(&self, seed: u64) -> Topology {
        self.scenario().topology(seed)
    }

    /// The method registry this dataset probes.
    pub fn methods(&self) -> MethodSet {
        self.scenario().methods()
    }

    /// Experiment configuration with an optional duration override.
    pub fn config(&self, seed: u64, duration: Option<SimDuration>) -> ExperimentConfig {
        self.scenario().config(seed, duration)
    }

    /// Runs the dataset end to end.
    pub fn run(&self, seed: u64, duration: Option<SimDuration>) -> ExperimentOutput {
        self.scenario().run(seed, duration)
    }

    /// Runs the dataset end to end on `shards` worker threads.
    ///
    /// The report is byte-identical for every `shards` value (see
    /// [`crate::shard`]); the thread count only changes wall-clock time.
    pub fn run_sharded(
        &self,
        seed: u64,
        duration: Option<SimDuration>,
        shards: usize,
    ) -> ExperimentOutput {
        self.scenario().run_sharded(seed, duration, shards)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shapes_match_table_3() {
        assert_eq!(Dataset::Ron2003.topology(1).n(), 30);
        assert_eq!(Dataset::RonNarrow.topology(1).n(), 17);
        assert_eq!(Dataset::RonWide.topology(1).n(), 17);
        assert_eq!(Dataset::Ron2003.paper_duration(), SimDuration::from_days(14));
        assert!(Dataset::RonWide.config(1, None).round_trip);
        assert!(!Dataset::Ron2003.config(1, None).round_trip);
    }

    #[test]
    fn method_registries_match() {
        assert_eq!(Dataset::Ron2003.methods().total(), 8);
        assert_eq!(Dataset::RonNarrow.methods().total(), 5);
        assert_eq!(Dataset::RonWide.methods().total(), 12);
    }

    #[test]
    fn duration_override_applies() {
        let cfg = Dataset::Ron2003.config(1, Some(SimDuration::from_hours(2)));
        assert_eq!(cfg.duration, SimDuration::from_hours(2));
    }

    #[test]
    fn shim_delegates_to_the_registry_scenarios() {
        // The shim and the registry must describe the same campaign.
        let cfg = Dataset::RonNarrow.config(7, None);
        assert_eq!(cfg.scenario, "ron-narrow");
        assert_eq!(cfg.duration, SimDuration::from_days(4));
        let spec = ScenarioRegistry::builtin().get("ron-narrow").unwrap().clone();
        assert_eq!(cfg.spec_digest, spec.digest());
    }
}
