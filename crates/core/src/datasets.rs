//! The three datasets of Table 3.
//!
//! | dataset   | hosts | days | probing                          |
//! |-----------|-------|------|----------------------------------|
//! | RONnarrow | 17    | 4    | one-way, 3 methods               |
//! | RONwide   | 17    | 5    | round-trip, 12 method combos     |
//! | RON2003   | 30    | 14   | one-way, 6 probe sets (8 rows)   |
//!
//! Paper-scale runs take minutes; every entry point accepts a duration
//! override so tests and benches can run scaled-down versions (the
//! statistics are rate-based, so shapes are preserved, only the error
//! bars widen).

use crate::experiment::{run_experiment, ExperimentConfig, ExperimentOutput};
use crate::method::MethodSet;
use netsim::{SimDuration, Topology};

/// One of the paper's measurement campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// 30 hosts, 14 days, one-way, the six 2003 probe sets.
    Ron2003,
    /// 17 hosts, 4 days, one-way, three methods (2002).
    RonNarrow,
    /// 17 hosts, 5 days, round-trip, twelve combos (2002).
    RonWide,
}

impl Dataset {
    /// The dataset's name as the paper uses it.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Ron2003 => "RON2003",
            Dataset::RonNarrow => "RONnarrow",
            Dataset::RonWide => "RONwide",
        }
    }

    /// The paper's measurement duration for this dataset.
    pub fn paper_duration(&self) -> SimDuration {
        match self {
            Dataset::Ron2003 => SimDuration::from_days(14),
            Dataset::RonNarrow => SimDuration::from_days(4),
            Dataset::RonWide => SimDuration::from_days(5),
        }
    }

    /// Builds the era-appropriate testbed.
    pub fn topology(&self, seed: u64) -> Topology {
        match self {
            Dataset::Ron2003 => Topology::ron2003(seed),
            Dataset::RonNarrow | Dataset::RonWide => Topology::ron2002(seed),
        }
    }

    /// The method registry this dataset probes.
    pub fn methods(&self) -> MethodSet {
        match self {
            Dataset::Ron2003 => MethodSet::ron2003(),
            Dataset::RonNarrow => MethodSet::ron_narrow(),
            Dataset::RonWide => MethodSet::ron_wide(),
        }
    }

    /// Experiment configuration with an optional duration override.
    pub fn config(&self, seed: u64, duration: Option<SimDuration>) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::new(self.methods());
        cfg.seed = seed;
        cfg.duration = duration.unwrap_or_else(|| self.paper_duration());
        cfg.round_trip = matches!(self, Dataset::RonWide);
        cfg
    }

    /// Runs the dataset end to end.
    pub fn run(&self, seed: u64, duration: Option<SimDuration>) -> ExperimentOutput {
        let topo = self.topology(seed);
        run_experiment(topo, self.config(seed, duration))
    }

    /// Runs the dataset end to end on `shards` worker threads.
    ///
    /// The report is byte-identical for every `shards` value (see
    /// [`crate::shard`]); the thread count only changes wall-clock time.
    pub fn run_sharded(
        &self,
        seed: u64,
        duration: Option<SimDuration>,
        shards: usize,
    ) -> ExperimentOutput {
        let topo = self.topology(seed);
        let mut cfg = self.config(seed, duration);
        cfg.shards = shards;
        run_experiment(topo, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shapes_match_table_3() {
        assert_eq!(Dataset::Ron2003.topology(1).n(), 30);
        assert_eq!(Dataset::RonNarrow.topology(1).n(), 17);
        assert_eq!(Dataset::RonWide.topology(1).n(), 17);
        assert_eq!(Dataset::Ron2003.paper_duration(), SimDuration::from_days(14));
        assert!(Dataset::RonWide.config(1, None).round_trip);
        assert!(!Dataset::Ron2003.config(1, None).round_trip);
    }

    #[test]
    fn method_registries_match() {
        assert_eq!(Dataset::Ron2003.methods().total(), 8);
        assert_eq!(Dataset::RonNarrow.methods().total(), 5);
        assert_eq!(Dataset::RonWide.methods().total(), 12);
    }

    #[test]
    fn duration_override_applies() {
        let cfg = Dataset::Ron2003.config(1, Some(SimDuration::from_hours(2)));
        assert_eq!(cfg.duration, SimDuration::from_hours(2));
    }
}
