//! # mpath-core — best-path vs. multi-path overlay routing
//!
//! The paper's primary contribution, reimplemented end to end:
//!
//! * [`method`] — the routing tactics of Table 4 (`direct`, `rand`,
//!   `lat`, `loss`) and every one- and two-packet combination the three
//!   datasets measure, including the paper's *inferred* rows (`direct*`
//!   from the first packet of `direct rand`, `lat*` from the second
//!   packet of `lat loss`);
//! * [`experiment`] — the §4.1 measurement methodology as a
//!   deterministic discrete-event run: hosts cycle through probe types,
//!   pick random destinations, pace sends uniformly in 0.6–1.2 s, stamp
//!   64-bit identifiers and local clocks, and push logs to the central
//!   collector, while the RON overlay (probing + link-state + one-hop
//!   routing) runs underneath;
//! * [`shard`] — deterministic sharded execution: the campaign is
//!   partitioned into independent workload slices executed on N worker
//!   threads, with a merge that is byte-identical to the sequential
//!   run for every shard count;
//! * [`distrib`] — the same slices farmed to worker *processes* over a
//!   small TCP protocol (length-prefixed JSON frames, leases with
//!   timeout and re-issue, idempotent slice-indexed merge), extending
//!   the byte-identity guarantee across hosts;
//! * [`scenario`] — the declarative scenario API: serde-serializable
//!   [`ScenarioSpec`]s (testbed, methods,
//!   impairment plan, calibration) and the open [`ScenarioRegistry`]
//!   of named built-ins — the three paper campaigns plus synthetic
//!   stress scenarios (shared-risk correlated outages, moving load
//!   waves, asymmetric paths, flash crowds);
//! * [`report`] — assembling accumulator state into the paper's tables
//!   and figures;
//! * [`matrix`] — the scenarios × seeds sweep: every cell runs through
//!   the sharded runner and one comparative report renders per-method
//!   deltas against the direct row plus best-of-first-j loss curves;
//! * [`model`] — the §5 analytic model: overhead and limits of reactive
//!   vs. redundant routing (Figure 6) and a bandwidth-budget advisor.

#![warn(missing_docs)]

pub mod distrib;
pub mod experiment;
pub mod matrix;
pub mod method;
pub mod model;
pub mod report;
pub mod scenario;
pub mod shard;

pub use distrib::{
    run_worker, serve_campaign, CampaignJob, ServeOptions, ServeReport, WorkerOptions,
    WorkerReport,
};
pub use experiment::{run_experiment, ExperimentConfig, ExperimentOutput};
pub use matrix::{render_matrix, run_matrix, MatrixCell, MatrixOutput, MatrixScenario};
pub use method::{Method, MethodSet, MethodSetSpec, MethodSpec, View, ViewSpec, MAX_PROBE_LEGS};
pub use model::{DesignModel, Recommendation};
pub use scenario::{
    builtin_specs, Calibration, DisseminationSpec, ImpairmentPlan, MethodsSpec, ScenarioRegistry,
    ScenarioSpec, TopologySpec,
};
pub use shard::{SlicePlan, Slice};
