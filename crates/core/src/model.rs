//! The §5 analytic model: when to probe, when to duplicate.
//!
//! The paper frames the choice as a *bandwidth budget*: an application
//! spends capacity either on probes (reactive routing) or on duplicate
//! packets (redundant routing), subject to three limits (Figure 6):
//!
//! * **best expected path** — probing can only find the best existing
//!   path; `p_reactive = min_i p_i` (§5.1);
//! * **capacity** — probe overhead is `O(N²)` and flow-independent;
//!   duplication overhead is proportional to the flow (§5.3's
//!   `1 + N²/Bandwidth` vs. `2`);
//! * **independence** — duplication cannot beat the correlation of the
//!   underlying paths; with conditional loss probability `clp`, a second
//!   copy removes at most `1 − clp` of losses (§5.2's ~50% empirical
//!   ceiling).

use serde::{Deserialize, Serialize};

/// Parameters of the design-space model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DesignModel {
    /// Overlay size.
    pub n: usize,
    /// Baseline probe rate toward each peer, Hz (RON: 1/15 s).
    pub probe_rate_hz: f64,
    /// Probe packet size, bytes (request + response, amortised).
    pub probe_bytes: f64,
    /// Unconditional loss rate of the direct path (e.g. 0.0042).
    pub p_direct: f64,
    /// Expected loss rate of the best overlay path (the reactive floor).
    pub p_best: f64,
    /// Conditional loss probability between copies on distinct overlay
    /// paths (the independence ceiling; the paper measures ~0.6).
    pub clp: f64,
}

impl DesignModel {
    /// The paper's measured 2003 operating point.
    pub fn ron2003_defaults() -> Self {
        DesignModel {
            n: 30,
            probe_rate_hz: 1.0 / 15.0,
            probe_bytes: 128.0,
            p_direct: 0.0042,
            p_best: 0.0033 * 0.5, // loss routing achieved 0.33%; the floor sits below it
            clp: 0.62,
        }
    }

    /// Probing bandwidth per node, bytes/s: each node probes `n − 1`
    /// peers and answers as many (the `O(N²)` system cost divided over N
    /// nodes).
    pub fn probe_bandwidth(&self) -> f64 {
        2.0 * (self.n as f64 - 1.0) * self.probe_rate_hz * self.probe_bytes
    }

    /// Maximum loss-rate improvement reactive routing can reach (the
    /// best-expected-path limit), as a fraction of baseline losses.
    pub fn reactive_limit(&self) -> f64 {
        (1.0 - self.p_best / self.p_direct).clamp(0.0, 1.0)
    }

    /// Maximum improvement k-redundant routing can reach given the
    /// correlation ceiling: copies die together with probability `clp`.
    pub fn redundant_limit(&self, copies: u32) -> f64 {
        1.0 - self.clp.powi(copies.saturating_sub(1) as i32)
    }

    /// Probe rate multiplier needed to realise improvement `d`: pushing
    /// toward the limit requires ever-faster reaction (asymptote at the
    /// best-path limit, §5.1's "asymptotically approaches").
    pub fn reactive_rate_factor(&self, d: f64) -> Option<f64> {
        let lim = self.reactive_limit();
        if d >= lim {
            return None;
        }
        Some(1.0 / (1.0 - d / lim))
    }

    /// Replication factor needed for improvement `d` under correlated
    /// copies: residual after m copies is `clp^(m−1)`.
    pub fn redundant_copies(&self, d: f64) -> Option<f64> {
        if d <= 0.0 {
            return Some(1.0);
        }
        if self.clp <= 0.0 {
            return Some(2.0);
        }
        if d >= 1.0 - f64::EPSILON {
            return None;
        }
        let m = 1.0 + (1.0 - d).ln() / self.clp.ln();
        // d beyond the k-copy ceiling for any practical k is infeasible —
        // the ln ratio still returns a value, so cap at a sane fan-out.
        if m > 64.0 {
            None
        } else {
            Some(m)
        }
    }

    /// Fraction of a `flow_bps` stream's capacity share left for data
    /// when reactive routing targets improvement `d` (Figure 6's
    /// "Reactive" curve).
    pub fn reactive_data_fraction(&self, d: f64, flow_bps: f64) -> Option<f64> {
        let factor = self.reactive_rate_factor(d)?;
        let probe = self.probe_bandwidth() * 8.0 * factor; // bits/s
        Some(flow_bps / (flow_bps + probe))
    }

    /// Fraction of capacity carrying *useful* data when redundant routing
    /// targets improvement `d` (Figure 6's "Redundant" curve): `1/m`.
    pub fn redundant_data_fraction(&self, d: f64) -> Option<f64> {
        self.redundant_copies(d).map(|m| 1.0 / m)
    }

    /// Generates the Figure 6 curves on an improvement grid.
    /// Returns `(grid, reactive_fraction, redundant_fraction)` with
    /// `None` encoded as `f64::NAN` for plotting gaps at the limits.
    pub fn figure6(&self, flow_bps: f64, points: usize) -> Vec<(f64, f64, f64)> {
        (0..points)
            .map(|i| {
                let d = i as f64 / (points - 1).max(1) as f64;
                (
                    d,
                    self.reactive_data_fraction(d, flow_bps).unwrap_or(f64::NAN),
                    self.redundant_data_fraction(d).unwrap_or(f64::NAN),
                )
            })
            .collect()
    }

    /// Chooses a scheme for a flow of `flow_bps` against a capacity of
    /// `capacity_bps`, targeting improvement `d`.
    pub fn recommend(&self, flow_bps: f64, capacity_bps: f64, d: f64) -> Recommendation {
        let reactive = self
            .reactive_rate_factor(d)
            .map(|f| self.probe_bandwidth() * 8.0 * f)
            .filter(|probe| flow_bps + probe <= capacity_bps);
        let redundant = self
            .redundant_copies(d)
            .map(|m| flow_bps * (m - 1.0))
            .filter(|extra| flow_bps + extra <= capacity_bps);
        match (reactive, redundant) {
            (None, None) => Recommendation::Infeasible,
            (Some(p), None) => Recommendation::Reactive { overhead_bps: p },
            (None, Some(x)) => Recommendation::Redundant { overhead_bps: x },
            (Some(p), Some(x)) => {
                if p <= x {
                    Recommendation::Reactive { overhead_bps: p }
                } else {
                    Recommendation::Redundant { overhead_bps: x }
                }
            }
        }
    }
}

/// The advisor's verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Recommendation {
    /// Probe-based reactive routing; overhead is flow-independent.
    Reactive {
        /// Probe traffic, bits/s.
        overhead_bps: f64,
    },
    /// Redundant multi-path routing; overhead scales with the flow.
    Redundant {
        /// Duplicate traffic, bits/s.
        overhead_bps: f64,
    },
    /// Neither scheme reaches the target inside the capacity.
    Infeasible,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DesignModel {
        DesignModel::ron2003_defaults()
    }

    #[test]
    fn limits_match_paper_scale() {
        let m = model();
        // "about 40% of the losses we observed were avoidable" via a
        // second copy: 1 − clp = 0.38.
        let r2 = m.redundant_limit(2);
        assert!((r2 - 0.38).abs() < 0.01, "r2={r2}");
        assert!(m.redundant_limit(3) > r2, "more copies, more improvement");
        assert!(m.reactive_limit() > 0.5, "loss routing has headroom");
    }

    #[test]
    fn reactive_rate_explodes_at_limit() {
        let m = model();
        let lim = m.reactive_limit();
        assert!(m.reactive_rate_factor(0.0).unwrap() == 1.0);
        let near = m.reactive_rate_factor(lim * 0.99).unwrap();
        assert!(near > 50.0, "near-limit factor {near}");
        assert!(m.reactive_rate_factor(lim).is_none());
    }

    #[test]
    fn redundant_copies_monotone() {
        let m = model();
        let m2 = m.redundant_copies(0.2).unwrap();
        let m3 = m.redundant_copies(0.35).unwrap();
        assert!(m3 > m2);
        assert!(m.redundant_copies(0.38).unwrap() > 1.9, "paper's 2-copy point");
        assert!(m.redundant_copies(0.999999).is_none() || m.redundant_copies(0.999999).unwrap() > 20.0);
    }

    #[test]
    fn thin_flows_prefer_redundancy_thick_flows_prefer_probing() {
        // §5.3: "For low-bandwidth flows, redundant approaches can offer
        // similar benefits with lower overhead. For high-bandwidth flows
        // … alternate-path routing has constant overhead."
        let m = model();
        let capacity = 1e9;
        let thin = m.recommend(8_000.0, capacity, 0.3); // 8 kbit/s stream
        let thick = m.recommend(50e6, capacity, 0.3); // 50 Mbit/s stream
        assert!(matches!(thin, Recommendation::Redundant { .. }), "thin: {thin:?}");
        assert!(matches!(thick, Recommendation::Reactive { .. }), "thick: {thick:?}");
    }

    #[test]
    fn capacity_limit_forces_infeasible() {
        let m = model();
        // Flow already saturates the link: neither probes (≈9 kbit/s at
        // this target) nor a second copy (1 Mbit/s) fit in 2 kbit/s slack.
        let r = m.recommend(1e6, 1.002e6, 0.35);
        assert_eq!(r, Recommendation::Infeasible);
    }

    #[test]
    fn figure6_curves_are_sane() {
        let m = model();
        let pts = m.figure6(64_000.0, 101);
        assert_eq!(pts.len(), 101);
        // Reactive data fraction decreases with the target; redundant too.
        let react: Vec<f64> = pts.iter().map(|p| p.1).filter(|v| !v.is_nan()).collect();
        for w in react.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        let red: Vec<f64> = pts.iter().map(|p| p.2).filter(|v| !v.is_nan()).collect();
        for w in red.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        // At d = 0 nothing is duplicated.
        assert!((pts[0].2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probe_bandwidth_scales_quadratically_systemwide() {
        let mut m = model();
        let b30 = m.probe_bandwidth() * 30.0;
        m.n = 60;
        let b60 = m.probe_bandwidth() * 60.0;
        let ratio = b60 / b30;
        assert!((ratio - 4.07).abs() < 0.2, "system probe cost ~N²: ratio {ratio}");
    }
}
