//! Regenerates `scenarios/triple-redundant.json` (the checked-in
//! k-redundant example CI smokes end to end). The file is the *output*
//! of this spec, so editing either side without the other fails the
//! non-ignored guard below.
//!
//! Regenerate with:
//!
//! ```text
//! cargo test -p mpath-core --test gen_scenario_file -- --ignored --nocapture
//! ```

use mpath_core::{
    Calibration, DisseminationSpec, ImpairmentPlan, MethodSetSpec, MethodSpec, MethodsSpec,
    ScenarioSpec, TopologySpec, ViewSpec,
};
use overlay::RouteTag;

fn triple_redundant() -> ScenarioSpec {
    ScenarioSpec {
        name: "triple-redundant".to_string(),
        summary: "3- and 4-redundant probes the paper never ran: what does the k-th copy buy?"
            .to_string(),
        topology: TopologySpec::Ron2003,
        methods: MethodsSpec::Custom(MethodSetSpec {
            methods: vec![
                MethodSpec {
                    name: "loss".into(),
                    legs: vec![RouteTag::Loss],
                    gap_ms: 0.0,
                    distinct: false,
                    all_prior: false,
                },
                MethodSpec {
                    name: "direct rand".into(),
                    legs: vec![RouteTag::Direct, RouteTag::Rand],
                    gap_ms: 0.0,
                    distinct: true,
                    all_prior: false,
                },
                MethodSpec {
                    name: "direct rand rand".into(),
                    legs: vec![RouteTag::Direct, RouteTag::Rand, RouteTag::Rand],
                    gap_ms: 0.0,
                    distinct: true,
                    all_prior: false,
                },
                MethodSpec {
                    name: "dr lat loss".into(),
                    legs: vec![RouteTag::Direct, RouteTag::Rand, RouteTag::Lat, RouteTag::Loss],
                    gap_ms: 0.0,
                    distinct: true,
                    all_prior: false,
                },
            ],
            views: vec![ViewSpec { name: "direct*".into(), source: 1, leg: 0 }],
        }),
        days: 7.0,
        horizon_days: 7.0,
        round_trip: false,
        impairments: ImpairmentPlan::none(),
        calibration: Calibration::default(),
        dissemination: DisseminationSpec::FullSnapshot,
    }
}

#[test]
#[ignore = "generator: prints the JSON for scenarios/triple-redundant.json"]
fn dump_triple_redundant() {
    let spec = triple_redundant();
    spec.validate().expect("checked-in scenario must validate");
    println!("{}", serde_json::to_string(&spec).unwrap());
}

#[test]
fn checked_in_file_matches_the_generator() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/triple-redundant.json");
    let text = std::fs::read_to_string(path).expect("scenarios/triple-redundant.json exists");
    let on_disk: ScenarioSpec = serde_json::from_str(&text).expect("file parses");
    on_disk.validate().expect("file validates");
    let expected = triple_redundant();
    assert_eq!(on_disk, expected, "regenerate with the ignored test in this file");
    assert_eq!(on_disk.digest(), expected.digest());
    assert_eq!(on_disk.methods.build().max_legs(), 4, "the set reaches the wire cap");
}
