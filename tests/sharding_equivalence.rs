//! The sharding equivalence harness: `run_experiment` with `shards = N`
//! must produce a **byte-identical** report to `shards = 1`, for every
//! dataset configuration.
//!
//! Identity is asserted two ways:
//!
//! * [`ExperimentOutput::fingerprint`] — an FNV fold over every
//!   accumulator cell, histogram bucket, counter and the exact bit
//!   pattern of every floating-point sum. f64 addition is
//!   non-associative, so this catches merge-order bugs that a rendered
//!   table might round away.
//! * the rendered Table 5/7 text — the user-visible artifact, compared
//!   as strings.
//!
//! Every run here uses a `slice_width` far below the campaign duration
//! so the slice plan genuinely engages (multiple independent slices,
//! work-stealing across threads), not just the single-slice fast path.

use mpath::core::{report, Dataset, ExperimentConfig, ExperimentOutput, SlicePlan};
use mpath::netsim::SimDuration;

/// A scaled-down campaign configuration cut into 4 slices.
fn sliced_cfg(ds: Dataset, seed: u64, shards: usize) -> ExperimentConfig {
    let mut cfg = ds.config(seed, Some(SimDuration::from_mins(40)));
    cfg.slice_width = SimDuration::from_mins(10);
    cfg.shards = shards;
    cfg
}

fn sharded_run(ds: Dataset, seed: u64, shards: usize) -> ExperimentOutput {
    mpath::core::run_experiment(ds.topology(seed), sliced_cfg(ds, seed, shards))
}

fn rendered(ds: Dataset, out: &ExperimentOutput) -> String {
    match ds {
        Dataset::RonWide => analysis::render_table7(&report::table7(out)),
        _ => analysis::render_table5("equivalence", &report::table5(out)),
    }
}

fn assert_equivalent(ds: Dataset) {
    assert!(
        SlicePlan::new(&sliced_cfg(ds, 42, 1)).len() > 1,
        "{}: the plan must engage multiple slices",
        ds.name()
    );
    let seq = sharded_run(ds, 42, 1);
    assert!(seq.measure_legs > 0, "{}: the sliced run must move traffic", ds.name());
    for shards in [2, 4, 8] {
        let par = sharded_run(ds, 42, shards);
        assert_eq!(
            seq.fingerprint(),
            par.fingerprint(),
            "{}: shards={shards} diverged from the sequential run",
            ds.name()
        );
        assert_eq!(
            rendered(ds, &seq),
            rendered(ds, &par),
            "{}: rendered report differs at shards={shards}",
            ds.name()
        );
    }
}

#[test]
fn ron2003_sharded_equals_sequential() {
    assert_equivalent(Dataset::Ron2003);
}

#[test]
fn ron_narrow_sharded_equals_sequential() {
    assert_equivalent(Dataset::RonNarrow);
}

#[test]
fn ron_wide_sharded_equals_sequential() {
    assert_equivalent(Dataset::RonWide);
}

#[test]
fn fingerprint_distinguishes_universes() {
    // Sanity: the fingerprint is not a constant — different seeds give
    // different outputs.
    let a = sharded_run(Dataset::RonNarrow, 42, 1);
    let b = sharded_run(Dataset::RonNarrow, 43, 1);
    assert_ne!(a.fingerprint(), b.fingerprint());
}

/// The CI toggle: with `shards = 0` (auto) the runner reads
/// `MPATH_SHARDS`, so running the whole tier-1 suite under
/// `MPATH_SHARDS=1` and `MPATH_SHARDS=4` executes this guard — and
/// every other experiment-driven test — under both schedules.
#[test]
fn env_shard_count_is_equivalent_too() {
    let explicit = sharded_run(Dataset::RonNarrow, 42, 1);
    let auto = mpath::core::run_experiment(
        Dataset::RonNarrow.topology(42),
        sliced_cfg(Dataset::RonNarrow, 42, 0), // auto: MPATH_SHARDS or 1
    );
    assert_eq!(
        explicit.fingerprint(),
        auto.fingerprint(),
        "MPATH_SHARDS={:?} must not change results",
        std::env::var("MPATH_SHARDS").ok()
    );
}
