//! The sharding equivalence harness: `run_experiment` with `shards = N`
//! must produce a **byte-identical** report to `shards = 1`, for every
//! scenario configuration — the paper campaigns *and* the synthetic
//! stress scenarios (whose scripted impairment schedules must compile
//! identically in every slice).
//!
//! Identity is asserted two ways:
//!
//! * [`ExperimentOutput::fingerprint`] — an FNV fold over every
//!   accumulator cell, histogram bucket, counter and the exact bit
//!   pattern of every floating-point sum. f64 addition is
//!   non-associative, so this catches merge-order bugs that a rendered
//!   table might round away.
//! * the rendered Table 5/7 text — the user-visible artifact, compared
//!   as strings.
//!
//! Every run here uses a `slice_width` far below the campaign duration
//! so the slice plan genuinely engages (multiple independent slices,
//! work-stealing across threads), not just the single-slice fast path.
//!
//! The golden test at the bottom pins the seed-1 fingerprint of every
//! built-in stress scenario: a change to a spec, an impairment planner,
//! or the simulator moves these values, so silent scenario drift is
//! caught at the PR that causes it.

use mpath::core::{report, ExperimentConfig, ExperimentOutput, ScenarioRegistry, ScenarioSpec, SlicePlan};
use mpath::netsim::SimDuration;

fn scenario(name: &str) -> ScenarioSpec {
    ScenarioRegistry::builtin().get(name).expect("builtin scenario").clone()
}

/// A scaled-down campaign configuration cut into 4 slices.
fn sliced_cfg(spec: &ScenarioSpec, seed: u64, shards: usize) -> ExperimentConfig {
    let mut cfg = spec.config(seed, Some(SimDuration::from_mins(40)));
    cfg.slice_width = SimDuration::from_mins(10);
    cfg.shards = shards;
    cfg
}

fn sharded_run(spec: &ScenarioSpec, seed: u64, shards: usize) -> ExperimentOutput {
    mpath::core::run_experiment(spec.topology(seed), sliced_cfg(spec, seed, shards))
}

fn rendered(spec: &ScenarioSpec, out: &ExperimentOutput) -> String {
    if spec.round_trip {
        analysis::render_table7(&report::table7(out))
    } else {
        analysis::render_table5("equivalence", &report::table5(out))
    }
}

fn assert_equivalent_spec(spec: &ScenarioSpec) -> ExperimentOutput {
    let name = &spec.name;
    assert!(
        SlicePlan::new(&sliced_cfg(spec, 42, 1)).len() > 1,
        "{name}: the plan must engage multiple slices"
    );
    let seq = sharded_run(spec, 42, 1);
    assert!(seq.measure_legs > 0, "{name}: the sliced run must move traffic");
    for shards in [2, 4, 8] {
        let par = sharded_run(spec, 42, shards);
        assert_eq!(
            seq.fingerprint(),
            par.fingerprint(),
            "{name}: shards={shards} diverged from the sequential run"
        );
        assert_eq!(
            rendered(spec, &seq),
            rendered(spec, &par),
            "{name}: rendered report differs at shards={shards}"
        );
    }
    seq
}

fn assert_equivalent(name: &str) {
    assert_equivalent_spec(&scenario(name));
}

/// The built-in `correlated-outages` schedules its shared-risk windows
/// over a 7-day horizon, so a 40-minute equivalence run rarely meets
/// one. This variant compresses the horizon to ~1 hour and densifies
/// the events so the scripted `down` windows *provably* land inside the
/// run and straddle its 10-minute slice boundaries — exercising the
/// scripted-outage transit path under sharding, not just the schedule
/// compiler.
fn dense_correlated() -> ScenarioSpec {
    let mut spec = scenario("correlated-outages");
    spec.name = "correlated-outages-dense".to_string();
    spec.days = 0.042; // ~1 hour
    spec.horizon_days = 0.042;
    spec.impairments.shared_risk = Some(mpath::netsim::SharedRiskSpec {
        groups: 4,
        hosts_per_group: 5,
        outages_per_day: 240.0, // ~10 events per group inside the hour
        down_mins: (2.0, 10.0),
    });
    spec.validate().expect("dense variant must be a valid spec");
    spec
}

/// A k-leg (3- and 4-redundant) custom method set: the generalized
/// probe driver, collector records and best-of-first-j accumulators
/// must hold the same byte-identity invariant as the paper's pairs.
fn k_leg_spec() -> ScenarioSpec {
    use mpath::core::{MethodSetSpec, MethodSpec, MethodsSpec, ViewSpec};
    use mpath::overlay::RouteTag;
    let mut spec = scenario("ron-narrow");
    spec.name = "k-leg-custom".to_string();
    spec.methods = MethodsSpec::Custom(MethodSetSpec {
        methods: vec![
            MethodSpec {
                name: "direct".into(),
                legs: vec![RouteTag::Direct],
                gap_ms: 0.0,
                distinct: false,
                all_prior: false,
            },
            MethodSpec {
                name: "triple".into(),
                legs: vec![RouteTag::Direct, RouteTag::Rand, RouteTag::Rand],
                gap_ms: 10.0,
                distinct: true,
                all_prior: false,
            },
            MethodSpec {
                name: "quad".into(),
                legs: vec![RouteTag::Direct, RouteTag::Rand, RouteTag::Lat, RouteTag::Loss],
                gap_ms: 0.0,
                distinct: true,
                all_prior: false,
            },
        ],
        views: vec![ViewSpec { name: "triple*".into(), source: 1, leg: 0 }],
    });
    spec.validate().expect("k-leg spec must be valid");
    spec
}

/// A scaled-down variant of the built-in `sparse-mesh` scenario: 24
/// hosts on a 4-regular probe mesh — small enough for the 40-minute
/// equivalence harness while still leaving most host pairs off-mesh, so
/// a slice that ever probed outside the mesh would be visible.
fn sparse_small() -> ScenarioSpec {
    let mut spec = scenario("sparse-mesh");
    spec.name = "sparse-mesh-small".to_string();
    spec.topology = mpath::core::TopologySpec::SparseSynthetic {
        hosts: 24,
        edge_loss: 0.02,
        mesh_k: 4,
    };
    spec.validate().expect("small sparse variant must be a valid spec");
    spec
}

#[test]
fn sparse_mesh_sharded_equals_sequential() {
    let seq = assert_equivalent_spec(&sparse_small());
    // Every slice rebuilds the topology — and thus the seed-derived
    // probe mesh — from the master seed, so the merged report must show
    // zero traffic outside the mesh, under every shard count.
    let mesh = mpath::netsim::sparse_mesh(24, 4, 42);
    let loss = seq.index_of("loss").expect("loss is measured");
    for src in 0..24u16 {
        for dst in 0..24u16 {
            if src == dst || mesh[src as usize].contains(&dst) {
                continue;
            }
            let pairs = seq
                .loss
                .cell(loss, mpath::netsim::HostId(src), mpath::netsim::HostId(dst))
                .pairs;
            assert_eq!(pairs, 0, "probe traffic off the mesh: {src} -> {dst}");
        }
    }
}

#[test]
fn k_leg_custom_methods_shard_equals_sequential() {
    let seq = assert_equivalent_spec(&k_leg_spec());
    assert_eq!(seq.loss.depth(), 4, "the deep accumulator must engage");
    let quad = seq.index_of("quad").expect("quad is measured");
    let curve = seq.loss.best_of_first_pct(quad);
    assert_eq!(curve.len(), 4);
    assert!(curve.windows(2).all(|w| w[1] <= w[0]), "redundancy can only help: {curve:?}");
}

/// A ron-narrow variant running a non-default dissemination mode: the
/// per-node LSA sequence state must re-initialize identically in every
/// slice, and (for gossip) the dissemination timer shares the node
/// timer wheel with the prober.
fn dissem_spec(name: &str, dissemination: mpath::core::DisseminationSpec) -> ScenarioSpec {
    let mut spec = scenario("ron-narrow");
    spec.name = name.to_string();
    spec.dissemination = dissemination;
    spec.validate().expect("dissemination variant must be a valid spec");
    spec
}

#[test]
fn delta_dissemination_shard_equals_sequential() {
    let spec =
        dissem_spec("delta-dissem", mpath::core::DisseminationSpec::Delta { max_age_probes: 8 });
    let seq = assert_equivalent_spec(&spec);
    // The LSA counters live outside the fingerprint (deliberately), so
    // their merge is pinned explicitly.
    assert!(seq.net.lsa_bytes > 0, "delta refreshes must be accounted");
    let par = sharded_run(&spec, 42, 4);
    assert_eq!(seq.net.lsa_bytes, par.net.lsa_bytes, "lsa_bytes diverged under sharding");
    assert_eq!(seq.net.lsa_entries, par.net.lsa_entries);
}

#[test]
fn gossip_dissemination_shard_equals_sequential() {
    let spec = dissem_spec(
        "gossip-dissem",
        mpath::core::DisseminationSpec::Gossip { fanout: 3, interval_ms: 15_000 },
    );
    let seq = assert_equivalent_spec(&spec);
    assert!(seq.net.lsa_bytes > 0, "gossip rounds must be accounted");
    let par = sharded_run(&spec, 42, 4);
    assert_eq!(seq.net.lsa_bytes, par.net.lsa_bytes, "lsa_bytes diverged under sharding");
    assert_eq!(seq.net.lsa_entries, par.net.lsa_entries);
}

#[test]
fn ron2003_sharded_equals_sequential() {
    assert_equivalent("ron2003");
}

#[test]
fn ron_narrow_sharded_equals_sequential() {
    assert_equivalent("ron-narrow");
}

#[test]
fn ron_wide_sharded_equals_sequential() {
    assert_equivalent("ron-wide");
}

#[test]
fn correlated_outages_sharded_equals_sequential() {
    // The shared-risk schedule is compiled per slice from the same seed;
    // a slice seeing a different schedule would diverge instantly.
    assert_equivalent("correlated-outages");
}

#[test]
fn load_waves_sharded_equals_sequential() {
    // The moving hot spot straddles slice boundaries; the absolute-time
    // windows must land identically in every slice plan execution.
    // (Host 0's first 90-minute dwell starts at t = 0, so the wave is
    // active throughout the 40-minute run.)
    assert_equivalent("load-waves");
}

#[test]
fn dense_correlated_outages_exercise_the_down_windows_under_sharding() {
    let spec = dense_correlated();
    // The scripted windows must actually intersect the 40-minute run.
    let topo = spec.topology(42);
    let in_run = topo
        .specs()
        .iter()
        .flat_map(|s| s.down.iter())
        .filter(|w| w.0 < mpath::netsim::SimTime::ZERO + SimDuration::from_mins(40))
        .count();
    assert!(in_run > 10, "only {in_run} down windows start inside the run");
    let seq = assert_equivalent_spec(&spec);
    // And they must dominate the outage drops: the same spec without
    // shared risk sees strictly fewer.
    let mut plain = dense_correlated();
    plain.name = "correlated-outages-dense-control".to_string();
    plain.impairments.shared_risk = None;
    let control = sharded_run(&plain, 42, 1);
    assert!(
        seq.net.dropped_outage > control.net.dropped_outage,
        "shared-risk windows must add outage drops: {} vs control {}",
        seq.net.dropped_outage,
        control.net.dropped_outage
    );
}

#[test]
fn fingerprint_distinguishes_universes() {
    // Sanity: the fingerprint is not a constant — different seeds give
    // different outputs.
    let spec = scenario("ron-narrow");
    let a = sharded_run(&spec, 42, 1);
    let b = sharded_run(&spec, 43, 1);
    assert_ne!(a.fingerprint(), b.fingerprint());
}

#[test]
fn fingerprint_distinguishes_scenarios() {
    // Same seed, same duration, same testbed size — but different specs
    // must never collide (the scenario name and spec digest are folded
    // into the fingerprint).
    let a = sharded_run(&scenario("correlated-outages"), 42, 1);
    let b = sharded_run(&scenario("load-waves"), 42, 1);
    assert_ne!(a.fingerprint(), b.fingerprint());
}

/// The CI toggle: with `shards = 0` (auto) the runner reads
/// `MPATH_SHARDS`, so running the whole tier-1 suite under
/// `MPATH_SHARDS=1` and `MPATH_SHARDS=4` executes this guard — and
/// every other experiment-driven test — under both schedules.
#[test]
fn env_shard_count_is_equivalent_too() {
    let spec = scenario("ron-narrow");
    let explicit = sharded_run(&spec, 42, 1);
    let auto = mpath::core::run_experiment(
        spec.topology(42),
        sliced_cfg(&spec, 42, 0), // auto: MPATH_SHARDS or 1
    );
    assert_eq!(
        explicit.fingerprint(),
        auto.fingerprint(),
        "MPATH_SHARDS={:?} must not change results",
        std::env::var("MPATH_SHARDS").ok()
    );
}

/// Golden seed-1 fingerprints for the three paper campaigns at a fixed
/// 30-simulated-minute duration. Recorded *before* the k-leg probe
/// refactor: the pair pipeline must be a true special case of the k-leg
/// pipeline, so these values must never move unless the simulator or a
/// paper spec changes intentionally. Re-record like the stress goldens:
///
/// ```text
/// cargo test --test sharding_equivalence golden -- --nocapture
/// ```
#[test]
fn golden_paper_campaign_fingerprints() {
    let golden: &[(&str, u64)] = &[
        ("ron2003", 0xbf1b301118588f9d),
        ("ron-narrow", 0x2dccce190878f0df),
        ("ron-wide", 0x76de32708ad3e0fe),
    ];
    let mut failures = Vec::new();
    for (name, expected) in golden {
        let out = scenario(name).run(1, Some(SimDuration::from_mins(30)));
        let got = out.fingerprint();
        println!("(\"{name}\", {got:#018x}),");
        if got != *expected {
            failures.push(format!("{name}: expected {expected:#018x}, got {got:#018x}"));
        }
    }
    assert!(
        failures.is_empty(),
        "paper campaigns drifted (re-record only if the drift is intentional):\n{}",
        failures.join("\n")
    );
}

/// Golden seed-1 fingerprints for every built-in stress scenario, at a
/// fixed 30-simulated-minute duration. These pin the *entire* chain —
/// spec JSON (via the digest), impairment planners, topology build,
/// simulator, accumulators. If a PR moves one intentionally, re-record
/// with:
///
/// ```text
/// cargo test --test sharding_equivalence golden -- --nocapture
/// ```
///
/// and copy the printed values.
#[test]
fn golden_stress_scenario_fingerprints() {
    // The dense variant is included because the built-ins schedule
    // their correlated windows over a 7-day horizon — at 30 minutes the
    // built-ins pin the spec digest and schedule compiler, while the
    // dense variant pins the scripted-outage transit path itself.
    let golden: &[(&str, u64)] = &[
        ("correlated-outages", 0x6991ef085e3467f0),
        ("load-waves", 0x8a2b279f160daa39),
        ("asymmetric-paths", 0x37a3046e85afc239),
        ("flash-crowd", 0xcb6d99d34a8fdc8f),
        ("correlated-outages-dense", 0x4a673816bee8c380),
        ("sparse-mesh-small", 0xd7eeed81a99baf41),
    ];
    let specs: Vec<ScenarioSpec> = golden
        .iter()
        .map(|(name, _)| match *name {
            "correlated-outages-dense" => dense_correlated(),
            "sparse-mesh-small" => sparse_small(),
            builtin => scenario(builtin),
        })
        .collect();
    let mut failures = Vec::new();
    for ((name, expected), spec) in golden.iter().zip(&specs) {
        let out = spec.run(1, Some(SimDuration::from_mins(30)));
        let got = out.fingerprint();
        println!("(\"{name}\", {got:#018x}),");
        if got != *expected {
            failures.push(format!("{name}: expected {expected:#018x}, got {got:#018x}"));
        }
    }
    assert!(
        failures.is_empty(),
        "stress scenarios drifted (re-record if intentional):\n{}",
        failures.join("\n")
    );
}
