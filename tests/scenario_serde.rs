//! Serde hardening for scenario files: every built-in spec must
//! round-trip through JSON losslessly, and malformed files — unknown
//! fields (typos), missing fields, bad enum variants — must fail with a
//! readable error instead of silently deserializing to defaults.

use mpath::core::{builtin_specs, ScenarioSpec};

#[test]
fn every_builtin_round_trips_through_json() {
    for spec in builtin_specs() {
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: ScenarioSpec = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("{}: reload failed: {e}", spec.name));
        assert_eq!(spec, back, "{} did not round-trip", spec.name);
        assert_eq!(
            spec.digest(),
            back.digest(),
            "{}: digest must survive the round trip",
            spec.name
        );
    }
}

#[test]
fn digests_are_unique_across_builtins() {
    let specs = builtin_specs();
    for a in &specs {
        for b in &specs {
            if a.name != b.name {
                assert_ne!(a.digest(), b.digest(), "{} vs {}", a.name, b.name);
            }
        }
    }
}

fn builtin_json(name: &str) -> String {
    let spec = builtin_specs().into_iter().find(|s| s.name == name).expect("builtin");
    serde_json::to_string(&spec).expect("serialize")
}

#[test]
fn unknown_top_level_field_is_a_readable_error() {
    let json = builtin_json("ron2003").replace("\"days\":", "\"dayz\":");
    let err = serde_json::from_str::<ScenarioSpec>(&json).unwrap_err().to_string();
    assert!(err.contains("unknown field `dayz`"), "got: {err}");
    assert!(err.contains("ScenarioSpec"), "error must name the struct: {err}");
    assert!(err.contains("`days`"), "error must list the expected fields: {err}");
}

#[test]
fn unknown_nested_field_is_rejected_too() {
    let json = builtin_json("correlated-outages")
        .replace("\"outages_per_day\":", "\"outages_per_dya\":");
    let err = serde_json::from_str::<ScenarioSpec>(&json).unwrap_err().to_string();
    assert!(err.contains("unknown field `outages_per_dya`"), "got: {err}");
    assert!(err.contains("SharedRiskSpec"), "error must name the nested struct: {err}");
}

#[test]
fn missing_field_is_a_readable_error_not_a_default() {
    let json = builtin_json("ron2003").replace("\"round_trip\":false,", "");
    let err = serde_json::from_str::<ScenarioSpec>(&json).unwrap_err().to_string();
    assert!(err.contains("missing field `round_trip`"), "got: {err}");
}

#[test]
fn unknown_enum_variant_is_rejected() {
    let json = builtin_json("ron2003").replace("\"topology\":\"Ron2003\"", "\"topology\":\"Ron1999\"");
    let err = serde_json::from_str::<ScenarioSpec>(&json).unwrap_err().to_string();
    assert!(err.contains("unknown variant `Ron1999`"), "got: {err}");
}

#[test]
fn wrong_type_is_rejected() {
    let json = builtin_json("ron2003").replace("\"days\":14.0", "\"days\":\"fourteen\"");
    let err = serde_json::from_str::<ScenarioSpec>(&json).unwrap_err().to_string();
    assert!(err.contains("expected number"), "got: {err}");
}

#[test]
fn edited_spec_moves_the_digest() {
    let original: ScenarioSpec = serde_json::from_str(&builtin_json("flash-crowd")).unwrap();
    let edited: ScenarioSpec = serde_json::from_str(
        &builtin_json("flash-crowd").replace("\"events_per_day\":6.0", "\"events_per_day\":60.0"),
    )
    .unwrap();
    assert_ne!(original.digest(), edited.digest(), "conditions changed, digest must move");
}
