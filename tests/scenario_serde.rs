//! Serde hardening for scenario files: every built-in spec must
//! round-trip through JSON losslessly, and malformed files — unknown
//! fields (typos), missing fields, bad enum variants — must fail with a
//! readable error instead of silently deserializing to defaults.

use mpath::core::{
    builtin_specs, MethodSetSpec, MethodSpec, MethodsSpec, ScenarioSpec, ViewSpec, MAX_PROBE_LEGS,
};
use mpath::overlay::RouteTag;
use proptest::prelude::*;

#[test]
fn every_builtin_round_trips_through_json() {
    for spec in builtin_specs() {
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: ScenarioSpec = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("{}: reload failed: {e}", spec.name));
        assert_eq!(spec, back, "{} did not round-trip", spec.name);
        assert_eq!(
            spec.digest(),
            back.digest(),
            "{}: digest must survive the round trip",
            spec.name
        );
    }
}

#[test]
fn digests_are_unique_across_builtins() {
    let specs = builtin_specs();
    for a in &specs {
        for b in &specs {
            if a.name != b.name {
                assert_ne!(a.digest(), b.digest(), "{} vs {}", a.name, b.name);
            }
        }
    }
}

fn builtin_json(name: &str) -> String {
    let spec = builtin_specs().into_iter().find(|s| s.name == name).expect("builtin");
    serde_json::to_string(&spec).expect("serialize")
}

#[test]
fn unknown_top_level_field_is_a_readable_error() {
    let json = builtin_json("ron2003").replace("\"days\":", "\"dayz\":");
    let err = serde_json::from_str::<ScenarioSpec>(&json).unwrap_err().to_string();
    assert!(err.contains("unknown field `dayz`"), "got: {err}");
    assert!(err.contains("ScenarioSpec"), "error must name the struct: {err}");
    assert!(err.contains("`days`"), "error must list the expected fields: {err}");
}

#[test]
fn unknown_nested_field_is_rejected_too() {
    let json = builtin_json("correlated-outages")
        .replace("\"outages_per_day\":", "\"outages_per_dya\":");
    let err = serde_json::from_str::<ScenarioSpec>(&json).unwrap_err().to_string();
    assert!(err.contains("unknown field `outages_per_dya`"), "got: {err}");
    assert!(err.contains("SharedRiskSpec"), "error must name the nested struct: {err}");
}

#[test]
fn missing_field_is_a_readable_error_not_a_default() {
    let json = builtin_json("ron2003").replace("\"round_trip\":false,", "");
    let err = serde_json::from_str::<ScenarioSpec>(&json).unwrap_err().to_string();
    assert!(err.contains("missing field `round_trip`"), "got: {err}");
}

#[test]
fn unknown_enum_variant_is_rejected() {
    let json = builtin_json("ron2003").replace("\"topology\":\"Ron2003\"", "\"topology\":\"Ron1999\"");
    let err = serde_json::from_str::<ScenarioSpec>(&json).unwrap_err().to_string();
    assert!(err.contains("unknown variant `Ron1999`"), "got: {err}");
}

#[test]
fn wrong_type_is_rejected() {
    let json = builtin_json("ron2003").replace("\"days\":14.0", "\"days\":\"fourteen\"");
    let err = serde_json::from_str::<ScenarioSpec>(&json).unwrap_err().to_string();
    assert!(err.contains("expected number"), "got: {err}");
}

// ------------------------------------------------ method specs as data

/// A scenario whose method set is fully user-defined, k-leg probes
/// included.
fn custom_scenario() -> ScenarioSpec {
    let mut spec = builtin_specs().into_iter().find(|s| s.name == "ron2003").expect("builtin");
    spec.name = "custom-methods".to_string();
    spec.methods = MethodsSpec::Custom(MethodSetSpec {
        methods: vec![
            MethodSpec {
                name: "direct".into(),
                legs: vec![RouteTag::Direct],
                gap_ms: 0.0,
                distinct: false,
                all_prior: false,
            },
            MethodSpec {
                name: "quad".into(),
                legs: vec![RouteTag::Direct, RouteTag::Rand, RouteTag::Lat, RouteTag::Loss],
                gap_ms: 5.0,
                distinct: true,
                all_prior: false,
            },
        ],
        views: vec![ViewSpec { name: "quad*".into(), source: 1, leg: 0 }],
    });
    spec
}

fn custom_json() -> String {
    serde_json::to_string(&custom_scenario()).expect("serialize")
}

#[test]
fn custom_method_scenario_round_trips() {
    let spec = custom_scenario();
    spec.validate().expect("custom scenario validates");
    let back: ScenarioSpec = serde_json::from_str(&custom_json()).expect("reload");
    assert_eq!(spec, back);
    assert_eq!(spec.digest(), back.digest());
    assert_eq!(back.methods.build().max_legs(), 4);
}

#[test]
fn unknown_method_spec_field_is_a_readable_error() {
    let json = custom_json().replace("\"gap_ms\":", "\"gap_mss\":");
    let err = serde_json::from_str::<ScenarioSpec>(&json).unwrap_err().to_string();
    assert!(err.contains("unknown field `gap_mss`"), "got: {err}");
    assert!(err.contains("MethodSpec"), "error must name the nested struct: {err}");
}

#[test]
fn unknown_route_tag_is_rejected() {
    let json = custom_json().replace("\"Lat\"", "\"Fastest\"");
    let err = serde_json::from_str::<ScenarioSpec>(&json).unwrap_err().to_string();
    assert!(err.contains("unknown variant `Fastest`"), "got: {err}");
}

#[test]
fn view_leg_beyond_k_is_rejected_at_validation() {
    let mut spec = custom_scenario();
    if let MethodsSpec::Custom(set) = &mut spec.methods {
        set.views[0].leg = MAX_PROBE_LEGS as u8;
    }
    let err = spec.validate().unwrap_err();
    assert!(err.contains("leg 4") && err.contains("quad"), "got: {err}");
}

#[test]
fn too_many_legs_are_rejected_at_validation() {
    let mut spec = custom_scenario();
    if let MethodsSpec::Custom(set) = &mut spec.methods {
        set.methods[1].legs.push(RouteTag::Direct);
    }
    let err = spec.validate().unwrap_err();
    assert!(err.contains("1 to 4 legs"), "got: {err}");
}

#[test]
fn duplicate_method_names_are_rejected_at_validation() {
    let mut spec = custom_scenario();
    if let MethodsSpec::Custom(set) = &mut spec.methods {
        set.views[0].name = "quad".into();
    }
    let err = spec.validate().unwrap_err();
    assert!(err.contains("duplicate") && err.contains("quad"), "got: {err}");
}

fn arb_method_set() -> impl Strategy<Value = MethodSetSpec> {
    // The vendored proptest has no `prop_flat_map`, so generate plain
    // data — per-method (leg count, per-leg tag bit-pattern, gap,
    // distinct) plus raw view references — and derive a valid set in one
    // map. Names are index-derived, so uniqueness holds by construction;
    // view sources and legs are taken modulo the ranges they reference.
    (
        proptest::collection::vec(
            (0usize..MAX_PROBE_LEGS, any::<u8>(), 0.0f64..100.0, any::<bool>(), any::<bool>()),
            1..8,
        ),
        proptest::collection::vec((any::<u8>(), any::<u8>()), 0..4),
    )
        .prop_map(|(raw_methods, raw_views)| {
            let tag = |bits: u8| match bits & 3 {
                0 => RouteTag::Direct,
                1 => RouteTag::Rand,
                2 => RouteTag::Lat,
                _ => RouteTag::Loss,
            };
            let methods: Vec<MethodSpec> = raw_methods
                .into_iter()
                .enumerate()
                .map(|(i, (extra_legs, pattern, gap_ms, distinct, all_prior))| {
                    let legs: Vec<RouteTag> =
                        (0..=extra_legs).map(|j| tag(pattern >> (2 * j))).collect();
                    let distinct = distinct && legs.len() >= 2;
                    MethodSpec {
                        name: format!("m{i}"),
                        distinct,
                        // `all_prior` is only valid on distinct sets.
                        all_prior: all_prior && distinct,
                        legs,
                        gap_ms,
                    }
                })
                .collect();
            let views = raw_views
                .into_iter()
                .enumerate()
                .map(|(i, (src, leg))| {
                    let source = (src as usize % methods.len()) as u8;
                    let leg = (leg as usize % methods[source as usize].legs.len()) as u8;
                    ViewSpec { name: format!("v{i}"), source, leg }
                })
                .collect();
            MethodSetSpec { methods, views }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any valid generated method set survives dump → reload with a
    /// fingerprint-identical scenario spec (the digest is the identity
    /// every output and report comparison keys on).
    #[test]
    fn any_valid_method_set_survives_dump_reload(set in arb_method_set()) {
        prop_assert!(set.validate().is_ok(), "generator must emit valid sets: {:?}",
            set.validate());
        let mut spec = custom_scenario();
        spec.methods = MethodsSpec::Custom(set);
        prop_assert!(spec.validate().is_ok());
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: ScenarioSpec = serde_json::from_str(&json).expect("reload");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.digest(), spec.digest(), "digest must survive the round trip");
        // And the built sets agree on shape.
        let a = spec.methods.build();
        let b = back.methods.build();
        prop_assert_eq!(a.names(), b.names());
        prop_assert_eq!(a.max_legs(), b.max_legs());
    }
}

#[test]
fn edited_spec_moves_the_digest() {
    let original: ScenarioSpec = serde_json::from_str(&builtin_json("flash-crowd")).unwrap();
    let edited: ScenarioSpec = serde_json::from_str(
        &builtin_json("flash-crowd").replace("\"events_per_day\":6.0", "\"events_per_day\":60.0"),
    )
    .unwrap();
    assert_ne!(original.digest(), edited.digest(), "conditions changed, digest must move");
}
