//! Tier-1 smoke test: one tiny, deterministic `run_experiment` pushed
//! end to end through the sim → overlay → trace → analysis pipeline.
//!
//! This is deliberately the cheapest full-pipeline run that still
//! produces a non-degenerate report (a few simulated minutes on a
//! five-host synthetic topology), so `cargo test -q` always exercises
//! the whole stack even when the longer integration suites are what
//! catch behavioural regressions.

use mpath::core::{report, run_experiment, ExperimentConfig, MethodSet};
use mpath::netsim::{SimDuration, Topology};

fn tiny_run(seed: u64) -> mpath::core::ExperimentOutput {
    let topo = Topology::synthetic(5, 0.02, seed);
    let mut cfg = ExperimentConfig::new(MethodSet::ron_narrow());
    cfg.duration = SimDuration::from_mins(10);
    cfg.seed = seed;
    cfg.flat_load = true;
    run_experiment(topo, cfg)
}

#[test]
fn tiny_experiment_produces_nonempty_report() {
    let out = tiny_run(7);

    // The pipeline moved real traffic...
    assert!(out.measure_legs > 0, "no measurement legs were sent");
    assert!(out.overlay_probes > 0, "the overlay never probed");

    // ...and the analysis layer turned it into the paper's tables.
    let rows = report::table5(&out);
    assert!(!rows.is_empty(), "table 5 must have method rows");
    assert!(
        rows.iter().any(|r| r.summary.pairs > 0),
        "table 5 rows must carry samples"
    );
    let fig = report::fig2(&[("smoke", &out)]);
    assert!(!fig.series.is_empty(), "figure 2 must have series");

    // Every method the config declares resolves in the report.
    for name in ["direct", "loss", "direct rand"] {
        assert!(
            report::resolve(&out, name).is_some(),
            "method `{name}` missing from output"
        );
    }
}

#[test]
fn tiny_experiment_is_deterministic() {
    let a = tiny_run(11);
    let b = tiny_run(11);
    assert_eq!(a.measure_legs, b.measure_legs);
    assert_eq!(a.overlay_probes, b.overlay_probes);
    assert_eq!(a.discarded(), b.discarded());
    let (ra, rb) = (report::table5(&a), report::table5(&b));
    assert_eq!(ra.len(), rb.len());
    for (x, y) in ra.iter().zip(&rb) {
        assert_eq!(
            x.summary.pairs, y.summary.pairs,
            "row {} diverged between identical runs",
            x.name
        );
    }
}
