//! Tier-1 live-driver test: a real loopback-UDP overlay cluster must
//! converge (promoted from the `mpath-live` crate suite so
//! `cargo test -q` exercises the socket path, not just the simulator).
//!
//! The demo node configuration probes every ~300 ms, so three nodes
//! exchange several full probe cycles within 1.5 s of wall-clock time:
//! every peer must be alive, lossless and with a measured latency — the
//! same link-state convergence the simulator's overlay reaches, driven
//! here by the vendored tokio runtime over real sockets.

use mpath::live::{Cluster, Impairment};

#[tokio::test]
async fn loopback_cluster_converges() {
    let cluster = Cluster::spawn(3, Impairment::none(), 7).await.expect("spawn cluster");
    tokio::time::sleep(tokio::time::Duration::from_millis(1500)).await;
    let snap = cluster.nodes()[0].snapshot().await.expect("snapshot");
    assert_eq!(snap.len(), 2, "node 0 must know both peers");
    for (peer, loss, lat, dead) in snap {
        assert!(!dead, "peer {peer:?} wrongly declared dead");
        assert_eq!(loss, 0.0, "loopback lost probes to {peer:?}");
        let lat = lat.expect("latency measured");
        assert!(lat < 200_000.0, "loopback rtt/2 {lat}us implausible");
    }
    cluster.shutdown().await;
}
