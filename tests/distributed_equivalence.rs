//! The distributed equivalence harness: a campaign served by
//! `serve_campaign` to TCP workers must produce a **byte-identical**
//! report to the in-process `shards = 1` sequential run — for any
//! worker count, and under injected faults.
//!
//! Three layers of proof:
//!
//! * loopback fleets of 1, 2 and 4 real workers on two scenarios,
//!   compared by [`ExperimentOutput::fingerprint`] *and* the rendered
//!   table text (the user-visible artifact);
//! * fault injection with hand-driven fake workers speaking the
//!   blocking protocol helpers: a worker killed mid-slice (lease
//!   re-issued on disconnect), a stalled worker that never heartbeats
//!   (lease times out), and a duplicated slice result (deduped by slice
//!   index) — the campaign must still finish and still match the
//!   sequential bits;
//! * handshake policing: a version-skewed worker is denied without
//!   damaging the campaign.
//!
//! Timeouts here are aggressively short (`lease_timeout` 250 ms,
//! heartbeats every 50 ms) so the failure paths run in test time; the
//! heartbeat thread keeps honest-but-slow slices alive.

use mpath::core::distrib::{read_msg_blocking, write_msg_blocking, Msg, PROTO_VERSION};
use mpath::core::experiment::OUTPUT_WIRE_VERSION;
use mpath::core::{
    report, run_worker, serve_campaign, CampaignJob, ExperimentOutput, ScenarioRegistry,
    ScenarioSpec, ServeOptions, ServeReport, WorkerOptions, WorkerReport,
};
use mpath::netsim::SimDuration;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

fn job(name: &str) -> CampaignJob {
    let spec = ScenarioRegistry::builtin().get(name).expect("builtin scenario").clone();
    CampaignJob {
        spec,
        seed: 42,
        duration_us: SimDuration::from_mins(40).as_micros(),
        slice_width_us: SimDuration::from_mins(10).as_micros(),
    }
}

/// The in-process reference: the same job, sequentially.
fn sequential(j: &CampaignJob) -> ExperimentOutput {
    let mut cfg = j.config();
    cfg.shards = 1;
    mpath::core::run_experiment(j.spec.topology(j.seed), cfg)
}

fn rendered(spec: &ScenarioSpec, out: &ExperimentOutput) -> String {
    if spec.round_trip {
        analysis::render_table7(&report::table7(out))
    } else {
        analysis::render_table5("distributed", &report::table5(out))
    }
}

fn fast_serve() -> ServeOptions {
    ServeOptions { lease_timeout: Duration::from_millis(250), poll_ms: 50 }
}

fn fast_worker() -> WorkerOptions {
    WorkerOptions { heartbeat: Duration::from_millis(50) }
}

/// Binds a loopback coordinator and returns its join handle + address.
fn spawn_coordinator(
    j: &CampaignJob,
) -> (std::thread::JoinHandle<ServeReport>, SocketAddr) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let serve_job = j.clone();
    let handle = std::thread::spawn(move || {
        serve_campaign(listener, serve_job, fast_serve()).expect("campaign serves")
    });
    (handle, addr)
}

fn spawn_workers(addr: SocketAddr, count: usize) -> Vec<std::thread::JoinHandle<WorkerReport>> {
    (0..count)
        .map(|_| std::thread::spawn(move || run_worker(addr, fast_worker()).expect("worker runs")))
        .collect()
}

fn distributed(j: &CampaignJob, workers: usize) -> (ServeReport, Vec<WorkerReport>) {
    let (coordinator, addr) = spawn_coordinator(j);
    let handles = spawn_workers(addr, workers);
    let report = coordinator.join().expect("coordinator thread");
    let worker_reports = handles.into_iter().map(|h| h.join().expect("worker thread")).collect();
    (report, worker_reports)
}

/// A fake worker's handshake: speak the blocking protocol far enough to
/// hold a `Job`, ready to misbehave.
fn fake_handshake(addr: SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).expect("connect");
    write_msg_blocking(
        &mut s,
        &Msg::Hello { proto: PROTO_VERSION, output_wire: OUTPUT_WIRE_VERSION },
    )
    .unwrap();
    match read_msg_blocking(&mut s).unwrap() {
        Some(Msg::Job { .. }) => s,
        other => panic!("expected Job, got {other:?}"),
    }
}

/// Sends `Ready` and insists on a `Lease`, retrying through `Wait`s.
fn lease_slice(s: &mut TcpStream) -> u64 {
    loop {
        write_msg_blocking(s, &Msg::Ready).unwrap();
        match read_msg_blocking(s).unwrap() {
            Some(Msg::Lease { slice }) => return slice,
            Some(Msg::Wait { poll_ms }) => {
                std::thread::sleep(Duration::from_millis(poll_ms.clamp(1, 100)));
            }
            other => panic!("expected a grant, got {other:?}"),
        }
    }
}

fn assert_distributed_equivalent(name: &str) {
    let j = job(name);
    let seq = sequential(&j);
    assert!(seq.measure_legs > 0, "{name}: the reference run must move traffic");
    for workers in [1usize, 2, 4] {
        let (rep, worker_reports) = distributed(&j, workers);
        assert_eq!(
            rep.output.fingerprint(),
            seq.fingerprint(),
            "{name}: {workers} worker(s) diverged from the sequential run"
        );
        assert_eq!(
            rendered(&j.spec, &rep.output),
            rendered(&j.spec, &seq),
            "{name}: rendered report differs at {workers} worker(s)"
        );
        assert_eq!(rep.slices, 4, "{name}: 40 min / 10 min slices");
        assert_eq!(rep.connections, workers as u64);
        // Conservation: every slice result delivered by some worker is
        // either the recorded copy or a counted duplicate.
        let delivered: u64 = worker_reports.iter().map(|w| w.slices_run).sum();
        assert_eq!(delivered, rep.slices as u64 + rep.duplicates, "{name}: slice conservation");
    }
}

#[test]
fn ron_narrow_distributed_equals_sequential() {
    assert_distributed_equivalent("ron-narrow");
}

#[test]
fn sparse_mesh_distributed_equals_sequential() {
    // Every worker process rebuilds the topology — and its seed-derived
    // sparse probe mesh — from the job's spec + master seed on its own
    // side of the wire; a derivation that drifted per-process would
    // diverge from the sequential bits instantly.
    let mut j = job("sparse-mesh");
    j.spec.name = "sparse-mesh-small".to_string();
    j.spec.topology = mpath::core::TopologySpec::SparseSynthetic {
        hosts: 24,
        edge_loss: 0.02,
        mesh_k: 4,
    };
    j.spec.validate().expect("small sparse variant must be a valid spec");
    let seq = sequential(&j);
    assert!(seq.measure_legs > 0, "the reference run must move traffic");
    for workers in [1usize, 2] {
        let (rep, _) = distributed(&j, workers);
        assert_eq!(
            rep.output.fingerprint(),
            seq.fingerprint(),
            "sparse mesh: {workers} worker(s) diverged from the sequential run"
        );
        assert_eq!(rendered(&j.spec, &rep.output), rendered(&j.spec, &seq));
    }
}

#[test]
fn delta_and_gossip_dissemination_distributed_equal_sequential() {
    // Non-default dissemination travels inside the job's scenario spec,
    // so every worker process must rebuild the same mode — and the LSA
    // counters (outside the fingerprint) must merge identically too.
    for (name, dissemination) in [
        ("delta-dissem", mpath::core::DisseminationSpec::Delta { max_age_probes: 8 }),
        ("gossip-dissem", mpath::core::DisseminationSpec::Gossip { fanout: 3, interval_ms: 15_000 }),
    ] {
        let mut j = job("ron-narrow");
        j.spec.name = name.to_string();
        j.spec.dissemination = dissemination;
        j.spec.validate().expect("dissemination variant must be a valid spec");
        let seq = sequential(&j);
        assert!(seq.net.lsa_bytes > 0, "{name}: dissemination must be accounted");
        for workers in [1usize, 2] {
            let (rep, _) = distributed(&j, workers);
            assert_eq!(
                rep.output.fingerprint(),
                seq.fingerprint(),
                "{name}: {workers} worker(s) diverged from the sequential run"
            );
            assert_eq!(rep.output.net.lsa_bytes, seq.net.lsa_bytes, "{name}: lsa_bytes diverged");
            assert_eq!(rep.output.net.lsa_entries, seq.net.lsa_entries);
            assert_eq!(rendered(&j.spec, &rep.output), rendered(&j.spec, &seq));
        }
    }
}

#[test]
fn correlated_outages_distributed_equals_sequential() {
    // The scripted shared-risk schedule must compile identically in
    // every worker process, not just every worker thread.
    assert_distributed_equivalent("correlated-outages");
}

#[test]
fn killed_worker_and_duplicate_result_still_merge_to_sequential_bits() {
    let j = job("ron-narrow");
    let (coordinator, addr) = spawn_coordinator(&j);

    // Fault 1 — killed mid-slice: take a lease, then vanish. The
    // disconnect must zero the lease so the slice is re-issued at once.
    {
        let mut victim = fake_handshake(addr);
        let slice = lease_slice(&mut victim);
        assert_eq!(slice, 0, "an empty plan leases slice 0 first");
        // Dropping the stream here is the kill: no result, no goodbye.
    }

    // Fault 2 — duplicated result: an overeager worker delivers slice 1
    // twice. Slice k is a pure function of the job, so both copies are
    // byte-identical and the coordinator must keep exactly one.
    {
        let mut eager = fake_handshake(addr);
        let slice = lease_slice(&mut eager);
        let first = j.run_slice_index(slice as usize);
        let second = j.run_slice_index(slice as usize);
        write_msg_blocking(&mut eager, &Msg::Result { slice, output: Box::new(first) }).unwrap();
        write_msg_blocking(&mut eager, &Msg::Result { slice, output: Box::new(second) }).unwrap();
    }

    // Honest workers finish whatever is left, including the re-leased
    // casualty of fault 1.
    let workers = spawn_workers(addr, 2);
    let rep = coordinator.join().expect("coordinator thread");
    for w in workers {
        w.join().expect("worker thread");
    }
    assert!(rep.releases >= 1, "the killed worker's lease must be re-issued");
    assert_eq!(rep.duplicates, 1, "the duplicated slice must be counted, not merged");
    assert_eq!(
        rep.output.fingerprint(),
        sequential(&j).fingerprint(),
        "faults must never leak into the merged bits"
    );
}

#[test]
fn stalled_worker_times_out_and_the_slice_is_re_leased() {
    let j = job("ron-narrow");
    let (coordinator, addr) = spawn_coordinator(&j);

    // The staller takes a lease and then simply stops: no heartbeats,
    // no result, but the connection stays open — only the lease
    // timeout can free the slice.
    let mut staller = fake_handshake(addr);
    let stalled_slice = lease_slice(&mut staller);

    let workers = spawn_workers(addr, 1);
    let rep = coordinator.join().expect("coordinator thread");
    for w in workers {
        w.join().expect("worker thread");
    }
    drop(staller);
    assert!(rep.releases >= 1, "slice {stalled_slice} must be re-leased after the timeout");
    assert_eq!(rep.output.fingerprint(), sequential(&j).fingerprint());
}

#[test]
fn version_skewed_worker_is_denied_without_harming_the_campaign() {
    let j = job("ron-narrow");
    let (coordinator, addr) = spawn_coordinator(&j);

    let mut skewed = TcpStream::connect(addr).expect("connect");
    write_msg_blocking(
        &mut skewed,
        &Msg::Hello { proto: PROTO_VERSION + 1, output_wire: OUTPUT_WIRE_VERSION },
    )
    .unwrap();
    match read_msg_blocking(&mut skewed).unwrap() {
        Some(Msg::Deny { reason }) => {
            assert!(reason.contains("version mismatch"), "unhelpful denial: {reason}");
        }
        other => panic!("expected Deny, got {other:?}"),
    }
    drop(skewed);

    let workers = spawn_workers(addr, 1);
    let rep = coordinator.join().expect("coordinator thread");
    for w in workers {
        w.join().expect("worker thread");
    }
    assert_eq!(rep.output.fingerprint(), sequential(&j).fingerprint());
}
