//! The distributed equivalence harness: a campaign served by
//! `serve_campaign` to TCP workers must produce a **byte-identical**
//! report to the in-process `shards = 1` sequential run — for any
//! worker count, and under injected faults.
//!
//! Three layers of proof:
//!
//! * loopback fleets of 1, 2 and 4 real workers on two scenarios,
//!   compared by [`ExperimentOutput::fingerprint`] *and* the rendered
//!   table text (the user-visible artifact);
//! * fault injection with hand-driven fake workers speaking the
//!   blocking protocol helpers: a worker killed mid-slice (lease
//!   re-issued on disconnect), a stalled worker that never heartbeats
//!   (lease times out), and a duplicated slice result (deduped by slice
//!   index) — the campaign must still finish and still match the
//!   sequential bits;
//! * handshake policing: a version-skewed worker is denied without
//!   damaging the campaign.
//!
//! Timeouts here are aggressively short (`lease_timeout` 250 ms,
//! heartbeats every 50 ms) so the failure paths run in test time; the
//! heartbeat thread keeps honest-but-slow slices alive.

use mpath::core::distrib::{read_msg_blocking, write_msg_blocking, Msg, PROTO_VERSION};
use mpath::core::experiment::OUTPUT_WIRE_VERSION;
use mpath::core::{
    report, run_worker, serve_campaign, CampaignJob, ExperimentOutput, ScenarioRegistry,
    ScenarioSpec, ServeOptions, ServeReport, WorkerOptions, WorkerReport,
};
use mpath::netsim::SimDuration;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

fn job(name: &str) -> CampaignJob {
    let spec = ScenarioRegistry::builtin().get(name).expect("builtin scenario").clone();
    CampaignJob {
        spec,
        seed: 42,
        duration_us: SimDuration::from_mins(40).as_micros(),
        slice_width_us: SimDuration::from_mins(10).as_micros(),
    }
}

/// The in-process reference: the same job, sequentially.
fn sequential(j: &CampaignJob) -> ExperimentOutput {
    let mut cfg = j.config();
    cfg.shards = 1;
    mpath::core::run_experiment(j.spec.topology(j.seed), cfg)
}

fn rendered(spec: &ScenarioSpec, out: &ExperimentOutput) -> String {
    if spec.round_trip {
        analysis::render_table7(&report::table7(out))
    } else {
        analysis::render_table5("distributed", &report::table5(out))
    }
}

fn fast_serve() -> ServeOptions {
    ServeOptions { lease_timeout: Duration::from_millis(250), poll_ms: 50 }
}

fn fast_worker() -> WorkerOptions {
    WorkerOptions { heartbeat: Duration::from_millis(50), jobs: 1 }
}

/// Binds a loopback coordinator and returns its join handle + address.
fn spawn_coordinator(
    j: &CampaignJob,
) -> (std::thread::JoinHandle<ServeReport>, SocketAddr) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let serve_job = j.clone();
    let handle = std::thread::spawn(move || {
        serve_campaign(listener, serve_job, fast_serve()).expect("campaign serves")
    });
    (handle, addr)
}

fn spawn_workers(addr: SocketAddr, count: usize) -> Vec<std::thread::JoinHandle<WorkerReport>> {
    (0..count)
        .map(|_| std::thread::spawn(move || run_worker(addr, fast_worker()).expect("worker runs")))
        .collect()
}

fn distributed(j: &CampaignJob, workers: usize) -> (ServeReport, Vec<WorkerReport>) {
    let (coordinator, addr) = spawn_coordinator(j);
    let handles = spawn_workers(addr, workers);
    let report = coordinator.join().expect("coordinator thread");
    let worker_reports = handles.into_iter().map(|h| h.join().expect("worker thread")).collect();
    (report, worker_reports)
}

/// A fake worker's handshake: speak the blocking protocol far enough to
/// hold a `Job`, ready to misbehave.
fn fake_handshake(addr: SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).expect("connect");
    write_msg_blocking(
        &mut s,
        &Msg::Hello { proto: PROTO_VERSION, output_wire: OUTPUT_WIRE_VERSION },
    )
    .unwrap();
    match read_msg_blocking(&mut s).unwrap() {
        Some(Msg::Job { .. }) => s,
        other => panic!("expected Job, got {other:?}"),
    }
}

/// Sends `Ready` and insists on a `Lease`, retrying through `Wait`s.
fn lease_slice(s: &mut TcpStream) -> u64 {
    loop {
        write_msg_blocking(s, &Msg::Ready).unwrap();
        match read_msg_blocking(s).unwrap() {
            Some(Msg::Lease { slice }) => return slice,
            Some(Msg::Wait { poll_ms }) => {
                std::thread::sleep(Duration::from_millis(poll_ms.clamp(1, 100)));
            }
            other => panic!("expected a grant, got {other:?}"),
        }
    }
}

fn assert_distributed_equivalent(name: &str) {
    let j = job(name);
    let seq = sequential(&j);
    assert!(seq.measure_legs > 0, "{name}: the reference run must move traffic");
    for workers in [1usize, 2, 4] {
        let (rep, worker_reports) = distributed(&j, workers);
        assert_eq!(
            rep.output.fingerprint(),
            seq.fingerprint(),
            "{name}: {workers} worker(s) diverged from the sequential run"
        );
        assert_eq!(
            rendered(&j.spec, &rep.output),
            rendered(&j.spec, &seq),
            "{name}: rendered report differs at {workers} worker(s)"
        );
        assert_eq!(rep.slices, 4, "{name}: 40 min / 10 min slices");
        assert_eq!(rep.connections, workers as u64);
        // Conservation: every slice result delivered by some worker is
        // either the recorded copy or a counted duplicate.
        let delivered: u64 = worker_reports.iter().map(|w| w.slices_run).sum();
        assert_eq!(delivered, rep.slices as u64 + rep.duplicates, "{name}: slice conservation");
    }
}

#[test]
fn ron_narrow_distributed_equals_sequential() {
    assert_distributed_equivalent("ron-narrow");
}

#[test]
fn sparse_mesh_distributed_equals_sequential() {
    // Every worker process rebuilds the topology — and its seed-derived
    // sparse probe mesh — from the job's spec + master seed on its own
    // side of the wire; a derivation that drifted per-process would
    // diverge from the sequential bits instantly.
    let mut j = job("sparse-mesh");
    j.spec.name = "sparse-mesh-small".to_string();
    j.spec.topology = mpath::core::TopologySpec::SparseSynthetic {
        hosts: 24,
        edge_loss: 0.02,
        mesh_k: 4,
    };
    j.spec.validate().expect("small sparse variant must be a valid spec");
    let seq = sequential(&j);
    assert!(seq.measure_legs > 0, "the reference run must move traffic");
    for workers in [1usize, 2] {
        let (rep, _) = distributed(&j, workers);
        assert_eq!(
            rep.output.fingerprint(),
            seq.fingerprint(),
            "sparse mesh: {workers} worker(s) diverged from the sequential run"
        );
        assert_eq!(rendered(&j.spec, &rep.output), rendered(&j.spec, &seq));
    }
}

#[test]
fn delta_and_gossip_dissemination_distributed_equal_sequential() {
    // Non-default dissemination travels inside the job's scenario spec,
    // so every worker process must rebuild the same mode — and the LSA
    // counters (outside the fingerprint) must merge identically too.
    for (name, dissemination) in [
        ("delta-dissem", mpath::core::DisseminationSpec::Delta { max_age_probes: 8 }),
        ("gossip-dissem", mpath::core::DisseminationSpec::Gossip { fanout: 3, interval_ms: 15_000 }),
    ] {
        let mut j = job("ron-narrow");
        j.spec.name = name.to_string();
        j.spec.dissemination = dissemination;
        j.spec.validate().expect("dissemination variant must be a valid spec");
        let seq = sequential(&j);
        assert!(seq.net.lsa_bytes > 0, "{name}: dissemination must be accounted");
        for workers in [1usize, 2] {
            let (rep, _) = distributed(&j, workers);
            assert_eq!(
                rep.output.fingerprint(),
                seq.fingerprint(),
                "{name}: {workers} worker(s) diverged from the sequential run"
            );
            assert_eq!(rep.output.net.lsa_bytes, seq.net.lsa_bytes, "{name}: lsa_bytes diverged");
            assert_eq!(rep.output.net.lsa_entries, seq.net.lsa_entries);
            assert_eq!(rendered(&j.spec, &rep.output), rendered(&j.spec, &seq));
        }
    }
}

#[test]
fn correlated_outages_distributed_equals_sequential() {
    // The scripted shared-risk schedule must compile identically in
    // every worker process, not just every worker thread.
    assert_distributed_equivalent("correlated-outages");
}

#[test]
fn pipelined_workers_match_sequential_bits() {
    // A worker holding several leases at once finishes slices out of
    // order and interleaves Result frames with fresh Readys; none of
    // that may reach the merged bytes. Two scenarios × jobs ∈ {1, 4},
    // every fleet pinned to the sequential fingerprint.
    for name in ["ron-narrow", "correlated-outages"] {
        let j = job(name);
        let seq = sequential(&j);
        for jobs in [1usize, 4] {
            let (coordinator, addr) = spawn_coordinator(&j);
            let opts = WorkerOptions { jobs, ..fast_worker() };
            let worker =
                std::thread::spawn(move || run_worker(addr, opts).expect("worker runs"));
            let rep = coordinator.join().expect("coordinator thread");
            let wr = worker.join().expect("worker thread");
            assert_eq!(
                rep.output.fingerprint(),
                seq.fingerprint(),
                "{name}: a --jobs {jobs} worker diverged from the sequential run"
            );
            assert_eq!(rendered(&j.spec, &rep.output), rendered(&j.spec, &seq));
            assert_eq!(wr.slices_run, rep.slices as u64 + rep.duplicates, "{name}: conservation");
            // The streaming merge folds every result; in-order arrival
            // keeps at most one slice parked at a time, out-of-order
            // arrival a few more — never the whole plan.
            assert!(
                rep.peak_buffered >= 1 && rep.peak_buffered <= rep.slices,
                "{name}: peak_buffered {} outside 1..={}",
                rep.peak_buffered,
                rep.slices
            );
        }
    }
}

#[test]
fn pipelined_worker_heartbeats_name_every_outstanding_lease() {
    // A fake coordinator leases two slices to one --jobs 2 worker and
    // listens: each quiet heartbeat interval the worker must re-arm
    // *both* leases — one Heartbeat frame per outstanding slice — or a
    // multi-slice worker would look dead on all but one of its slices.
    let j = job("ron-narrow");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let worker = std::thread::spawn(move || {
        run_worker(addr, WorkerOptions { heartbeat: Duration::from_millis(10), jobs: 2 })
            .expect("worker runs")
    });
    let (mut s, _peer) = listener.accept().expect("worker connects");
    match read_msg_blocking(&mut s).unwrap() {
        Some(Msg::Hello { proto, output_wire }) => {
            assert_eq!((proto, output_wire), (PROTO_VERSION, OUTPUT_WIRE_VERSION));
        }
        other => panic!("expected Hello, got {other:?}"),
    }
    write_msg_blocking(&mut s, &Msg::Job { job: Box::new(j.clone()) }).unwrap();
    // Heartbeats arrive in runs between the worker's other frames; any
    // run naming both slices proves one timeout tick re-armed them all.
    let mut granted = 0u64;
    let mut results = 0usize;
    let mut batch: Vec<u64> = Vec::new();
    let mut batches: Vec<Vec<u64>> = Vec::new();
    let flush = |batch: &mut Vec<u64>, batches: &mut Vec<Vec<u64>>| {
        if !batch.is_empty() {
            batches.push(std::mem::take(batch));
        }
    };
    loop {
        match read_msg_blocking(&mut s).unwrap() {
            Some(Msg::Ready) => {
                flush(&mut batch, &mut batches);
                if granted < 2 {
                    write_msg_blocking(&mut s, &Msg::Lease { slice: granted }).unwrap();
                    granted += 1;
                } else if results < 2 {
                    write_msg_blocking(&mut s, &Msg::Wait { poll_ms: 20 }).unwrap();
                } else {
                    write_msg_blocking(&mut s, &Msg::Done).unwrap();
                    break;
                }
            }
            Some(Msg::Heartbeat { slice }) => batch.push(slice),
            Some(Msg::Result { .. }) => {
                flush(&mut batch, &mut batches);
                results += 1;
            }
            other => panic!("unexpected frame from worker: {other:?}"),
        }
    }
    let wr = worker.join().expect("worker thread");
    assert_eq!(wr.slices_run, 2);
    assert!(!wr.coordinator_closed);
    assert!(
        batches.iter().any(|b| b.contains(&0) && b.contains(&1)),
        "no heartbeat run named both outstanding slices; runs seen: {batches:?}"
    );
}

#[test]
fn stalled_leases_are_re_issued_only_after_the_configured_timeout() {
    // The lease timeout is configuration (repro --lease-secs), not a
    // constant: before it elapses a stalled worker's slices must *not*
    // move, after it they must. The staller takes every lease in the
    // plan so the helper's grants are unambiguous.
    let j = job("ron-narrow");
    let timeout = Duration::from_millis(400);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let serve_job = j.clone();
    let opts = ServeOptions { lease_timeout: timeout, poll_ms: 50 };
    let coordinator = std::thread::spawn(move || {
        serve_campaign(listener, serve_job, opts).expect("campaign serves")
    });

    let mut staller = fake_handshake(addr);
    for expect in 0..4u64 {
        assert_eq!(lease_slice(&mut staller), expect, "plan leases in index order");
    }
    // ... and then silence: no heartbeats, no results, connection open.

    let mut helper = fake_handshake(addr);
    write_msg_blocking(&mut helper, &Msg::Ready).unwrap();
    match read_msg_blocking(&mut helper).unwrap() {
        Some(Msg::Wait { .. }) => {} // live leases stay put before the timeout
        other => panic!("expected Wait while every lease is live, got {other:?}"),
    }
    std::thread::sleep(timeout + Duration::from_millis(200));
    write_msg_blocking(&mut helper, &Msg::Ready).unwrap();
    match read_msg_blocking(&mut helper).unwrap() {
        // All four leases share a deadline; the scan keeps the first.
        Some(Msg::Lease { slice }) => assert_eq!(slice, 0, "most-overdue lease re-issues first"),
        other => panic!("expected the timed-out lease back, got {other:?}"),
    }
    // Results are slice-indexed and idempotent, so the helper can
    // finish the whole campaign without leasing the other three.
    for k in 0..4u64 {
        let output = Box::new(j.run_slice_index(k as usize));
        write_msg_blocking(&mut helper, &Msg::Result { slice: k, output }).unwrap();
    }
    write_msg_blocking(&mut helper, &Msg::Ready).unwrap();
    match read_msg_blocking(&mut helper).unwrap() {
        Some(Msg::Done) => {}
        other => panic!("expected Done after the last result, got {other:?}"),
    }
    drop(staller);
    let rep = coordinator.join().expect("coordinator thread");
    assert_eq!(rep.releases, 1, "exactly one lease expired (the probe re-lease of slice 0)");
    assert_eq!(rep.output.fingerprint(), sequential(&j).fingerprint());
}

#[test]
fn killed_worker_and_duplicate_result_still_merge_to_sequential_bits() {
    let j = job("ron-narrow");
    let (coordinator, addr) = spawn_coordinator(&j);

    // Fault 1 — killed mid-slice: take a lease, then vanish. The
    // disconnect must zero the lease so the slice is re-issued at once.
    {
        let mut victim = fake_handshake(addr);
        let slice = lease_slice(&mut victim);
        assert_eq!(slice, 0, "an empty plan leases slice 0 first");
        // Dropping the stream here is the kill: no result, no goodbye.
    }

    // Fault 2 — duplicated result: an overeager worker delivers slice 1
    // twice. Slice k is a pure function of the job, so both copies are
    // byte-identical and the coordinator must keep exactly one.
    {
        let mut eager = fake_handshake(addr);
        let slice = lease_slice(&mut eager);
        let first = j.run_slice_index(slice as usize);
        let second = j.run_slice_index(slice as usize);
        write_msg_blocking(&mut eager, &Msg::Result { slice, output: Box::new(first) }).unwrap();
        write_msg_blocking(&mut eager, &Msg::Result { slice, output: Box::new(second) }).unwrap();
    }

    // Honest workers finish whatever is left, including the re-leased
    // casualty of fault 1.
    let workers = spawn_workers(addr, 2);
    let rep = coordinator.join().expect("coordinator thread");
    for w in workers {
        w.join().expect("worker thread");
    }
    assert!(rep.releases >= 1, "the killed worker's lease must be re-issued");
    assert_eq!(rep.duplicates, 1, "the duplicated slice must be counted, not merged");
    assert_eq!(
        rep.output.fingerprint(),
        sequential(&j).fingerprint(),
        "faults must never leak into the merged bits"
    );
}

#[test]
fn stalled_worker_times_out_and_the_slice_is_re_leased() {
    let j = job("ron-narrow");
    let (coordinator, addr) = spawn_coordinator(&j);

    // The staller takes a lease and then simply stops: no heartbeats,
    // no result, but the connection stays open — only the lease
    // timeout can free the slice.
    let mut staller = fake_handshake(addr);
    let stalled_slice = lease_slice(&mut staller);

    let workers = spawn_workers(addr, 1);
    let rep = coordinator.join().expect("coordinator thread");
    for w in workers {
        w.join().expect("worker thread");
    }
    drop(staller);
    assert!(rep.releases >= 1, "slice {stalled_slice} must be re-leased after the timeout");
    assert_eq!(rep.output.fingerprint(), sequential(&j).fingerprint());
}

#[test]
fn version_skewed_worker_is_denied_without_harming_the_campaign() {
    let j = job("ron-narrow");
    let (coordinator, addr) = spawn_coordinator(&j);

    let mut skewed = TcpStream::connect(addr).expect("connect");
    write_msg_blocking(
        &mut skewed,
        &Msg::Hello { proto: PROTO_VERSION + 1, output_wire: OUTPUT_WIRE_VERSION },
    )
    .unwrap();
    match read_msg_blocking(&mut skewed).unwrap() {
        Some(Msg::Deny { reason }) => {
            assert!(reason.contains("version mismatch"), "unhelpful denial: {reason}");
        }
        other => panic!("expected Deny, got {other:?}"),
    }
    drop(skewed);

    let workers = spawn_workers(addr, 1);
    let rep = coordinator.join().expect("coordinator thread");
    for w in workers {
        w.join().expect("worker thread");
    }
    assert_eq!(rep.output.fingerprint(), sequential(&j).fingerprint());
}
