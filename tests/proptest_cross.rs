//! Cross-crate property tests: invariants that must hold for *any*
//! input, not just the scripted scenarios.

use mpath::fec::{BlockInterleaver, ErasureCode};
use mpath::netsim::{HostId, Rng, SimTime, Topology};
use mpath::overlay::{MeasureKind, MetricEntry, Packet, RouteTag};
use proptest::prelude::*;

fn arb_route_tag() -> impl Strategy<Value = RouteTag> {
    prop_oneof![
        Just(RouteTag::Direct),
        Just(RouteTag::Rand),
        Just(RouteTag::Lat),
        Just(RouteTag::Loss),
    ]
}

fn arb_metrics() -> impl Strategy<Value = Vec<MetricEntry>> {
    proptest::collection::vec(
        (any::<u16>(), any::<u16>(), any::<u32>(), any::<bool>()).prop_map(
            |(peer, loss_e4, lat_us, alive)| MetricEntry {
                peer: HostId(peer),
                loss_e4,
                lat_us,
                alive,
            },
        ),
        0..40,
    )
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    let leaf = prop_oneof![
        (any::<u64>(), any::<u16>(), any::<i64>(), arb_metrics()).prop_map(
            |(id, from, t, metrics)| Packet::ProbeReq {
                id,
                from: HostId(from),
                sent_local_us: t,
                metrics,
            }
        ),
        (any::<u64>(), any::<u16>(), any::<i64>(), arb_metrics()).prop_map(
            |(id, from, t, metrics)| Packet::ProbeResp {
                id,
                from: HostId(from),
                resp_local_us: t,
                metrics,
            }
        ),
        (
            any::<u64>(),
            any::<u8>(),
            0u8..mpath::overlay::MAX_PROBE_LEGS as u8,
            any::<u16>(),
            any::<u16>(),
            arb_route_tag(),
            any::<i64>()
        )
            .prop_map(|(id, method, leg, o, t, route, sent)| Packet::Measure {
                id,
                method,
                leg,
                origin: HostId(o),
                target: HostId(t),
                route,
                kind: MeasureKind::OneWay,
                sent_local_us: sent,
            }),
        (any::<u16>(), any::<u16>(), any::<u32>(), any::<u32>(), proptest::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(o, t, stream, seq, payload)| Packet::Data {
                origin: HostId(o),
                target: HostId(t),
                stream,
                seq,
                payload: bytes::Bytes::from(payload),
            }),
    ];
    // Optionally wrap in one Forward layer (the overlay uses at most one
    // intermediate).
    (leaf, any::<Option<u16>>()).prop_map(|(inner, fwd)| match fwd {
        Some(target) => Packet::Forward { target: HostId(target), inner: Box::new(inner) },
        None => inner,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wire_round_trips_any_packet(pkt in arb_packet()) {
        let encoded = pkt.encode();
        let decoded = Packet::decode(&encoded).expect("own encoding must decode");
        prop_assert_eq!(decoded, pkt);
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Packet::decode(&data);
    }

    #[test]
    fn rs_recovers_any_pattern_within_budget(
        k in 1usize..12,
        r in 0usize..5,
        seed in any::<u64>(),
    ) {
        let code = ErasureCode::new(k, r).unwrap();
        let mut rng = Rng::new(seed);
        let data: Vec<Vec<u8>> = (0..k)
            .map(|_| (0..24).map(|_| rng.next_u64() as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter().cloned().map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        // Erase up to r shards at random positions.
        let erasures = (rng.next_u64() % (r as u64 + 1)) as usize;
        let mut positions: Vec<usize> = (0..k + r).collect();
        rng.shuffle(&mut positions);
        for &p in positions.iter().take(erasures) {
            shards[p] = None;
        }
        code.decode(&mut shards).unwrap();
        for i in 0..k {
            prop_assert_eq!(shards[i].as_ref().unwrap(), &data[i]);
        }
    }

    #[test]
    fn interleaver_is_bijective(rows in 1usize..12, cols in 1usize..12, blocks in 1usize..4) {
        let il = BlockInterleaver::new(rows, cols);
        let n = il.len() * blocks;
        let mut seen = vec![false; n];
        for i in 0..n {
            let j = il.permute(i);
            prop_assert!(j < n);
            prop_assert!(!seen[j]);
            seen[j] = true;
            prop_assert_eq!(il.inverse(j), i);
        }
    }

    #[test]
    fn fec_stream_survives_any_loss_pattern(
        k in 2usize..6,
        r in 1usize..3,
        seed in any::<u64>(),
        loss_pct in 0u32..60,
    ) {
        // Residual *data* loss can never exceed the raw data-packet loss,
        // whatever the pattern (parity slots have their own fate, so the
        // comparison must count data slots only).
        let mut tx = mpath::fec::FecSender::new(k, r).unwrap();
        let mut rx = mpath::fec::FecReceiver::new(k, r, 8).unwrap();
        let mut rng = Rng::new(seed);
        let mut data_sent = 0u64;
        let mut data_dropped = 0u64;
        let deliver = |pkt: mpath::fec::FecPacket,
                           rng: &mut Rng,
                           data_sent: &mut u64,
                           data_dropped: &mut u64,
                           rx: &mut mpath::fec::FecReceiver| {
            let is_data = pkt.is_data(k);
            if is_data {
                *data_sent += 1;
            }
            if rng.chance(loss_pct as f64 / 100.0) {
                if is_data {
                    *data_dropped += 1;
                }
                rx.on_slot(None);
            } else {
                rx.on_slot(Some(pkt));
            }
        };
        for i in 0..400 {
            for pkt in tx.push(vec![i as u8; 8]).unwrap() {
                deliver(pkt, &mut rng, &mut data_sent, &mut data_dropped, &mut rx);
            }
        }
        for pkt in tx.flush().unwrap() {
            deliver(pkt, &mut rng, &mut data_sent, &mut data_dropped, &mut rx);
        }
        let stats = rx.finish();
        let raw_data = data_dropped as f64 / data_sent.max(1) as f64;
        prop_assert!(stats.residual_loss() <= raw_data + 1e-9,
            "residual {} > raw data loss {}", stats.residual_loss(), raw_data);
    }

    #[test]
    fn network_transmission_is_deterministic(seed in any::<u64>(), n in 3u16..7) {
        let run = || {
            let topo = Topology::synthetic(n as usize, 0.05, seed);
            let mut net = mpath::netsim::Network::new(topo, seed);
            let mut outcomes = Vec::new();
            for i in 0..200u64 {
                let a = HostId((i % n as u64) as u16);
                let b = HostId(((i + 1) % n as u64) as u16);
                outcomes.push(net.transmit(SimTime::from_millis(i * 97), a, b).is_delivered());
            }
            outcomes
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn cdf_fraction_is_monotone_and_bounded(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = analysis::Cdf::from_values(values.clone());
        let mut prev = 0.0;
        for q in [-1e7, -10.0, 0.0, 1.0, 1e3, 1e7] {
            let f = cdf.fraction_at_or_below(q);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev);
            prev = f;
        }
        prop_assert_eq!(cdf.fraction_at_or_below(f64::INFINITY), 1.0);
    }

    #[test]
    fn sharded_experiment_matches_sequential_for_any_seed(
        seed in any::<u64>(),
        shards in 1usize..=8,
    ) {
        // The sharding merge invariant, fuzzed: for any master seed and
        // any worker count, the sliced run folds to the exact bits of
        // the single-worker run. A tiny 3-slice campaign keeps each
        // case cheap while still exercising multi-slice merge order and
        // the work-stealing scheduler.
        use mpath::core::{run_experiment, ExperimentConfig, MethodSet};
        let run = |workers: usize| {
            let topo = Topology::synthetic(4, 0.02, seed);
            let mut cfg = ExperimentConfig::new(MethodSet::ron_narrow());
            cfg.duration = mpath::netsim::SimDuration::from_mins(6);
            cfg.slice_width = mpath::netsim::SimDuration::from_mins(2);
            cfg.seed = seed;
            cfg.flat_load = true;
            cfg.shards = workers;
            run_experiment(topo, cfg)
        };
        let seq = run(1);
        let par = run(shards);
        prop_assert_eq!(seq.fingerprint(), par.fingerprint(),
            "seed={} shards={} diverged", seed, shards);
        prop_assert_eq!(seq.measure_legs, par.measure_legs);
    }

    #[test]
    fn collector_conserves_probes(
        n_probes in 1u64..200,
        seed in any::<u64>(),
    ) {
        use trace::{Collector, CollectorConfig, SendEvent};
        let mut col = Collector::new(4, CollectorConfig::default());
        let mut rng = Rng::new(seed);
        for id in 0..n_probes {
            let t = SimTime::from_millis(id * 100);
            col.on_send(SendEvent {
                id,
                method: 0,
                leg: 0,
                src: HostId((rng.next_u64() % 4) as u16),
                dst: HostId(((rng.next_u64() % 3) as u16 + 1) % 4),
                route: 0,
                sent: t,
                sent_local_us: t.as_micros() as i64,
            });
        }
        col.finish(SimTime::from_secs(10_000));
        let outcomes = col.drain();
        prop_assert_eq!(outcomes.len() as u64, n_probes, "every probe resolves exactly once");
    }
}
