//! Failure-injection integration: host crashes vs. path outages must be
//! treated differently (§4.1 — "our numbers only reflect failures that
//! affected the network, while leaving hosts running").

use mpath::core::{run_experiment, ExperimentConfig, MethodSet, ScenarioRegistry};
use mpath::netsim::{
    Delivery, EventQueue, HostId, LoadProfile, Network, SimDuration, SimTime, Topology,
};
use mpath::overlay::{NodeConfig, OverlayNode, Packet, Policy, Route, Transmit};

#[test]
fn host_crashes_are_discarded_not_counted() {
    // The 2003 testbed crashes hosts; the collector must discard some
    // samples rather than blame the network.
    let out = ScenarioRegistry::builtin()
        .get("ron2003")
        .unwrap()
        .run(31, Some(SimDuration::from_hours(6)));
    assert!(out.discarded() > 0, "two-week-style run must discard crash samples");

    // A synthetic topology without crashes must discard nothing.
    let topo = Topology::synthetic(5, 0.01, 31);
    let mut cfg = ExperimentConfig::new(MethodSet::ron_narrow());
    cfg.duration = SimDuration::from_hours(2);
    cfg.seed = 31;
    cfg.flat_load = true;
    let out2 = run_experiment(topo, cfg);
    assert_eq!(out2.discarded(), 0, "no crashes → no discards");
}

/// Drives a small overlay over a network with a scripted outage and
/// asserts the reactive route detours and then returns.
#[test]
fn reactive_routing_detours_around_forced_outage() {
    enum Ev {
        Node(u16),
        Arrive { to: u16, packet: Packet },
    }

    let n = 4;
    let topo = Topology::synthetic(n, 0.0, 77);
    let (a, b) = (HostId(0), HostId(1));
    let broken = topo.seg_core(a, b);
    let mut net = Network::new(topo, 77);
    net.set_load(LoadProfile::flat());
    let mut nodes: Vec<OverlayNode> = (0..n as u16)
        .map(|i| OverlayNode::new(HostId(i), n, NodeConfig::default(), 500 + i as u64, SimTime::ZERO))
        .collect();
    let mut q = EventQueue::new();
    for i in 0..n as u16 {
        if let Some(t) = nodes[i as usize].poll_at() {
            q.push(t, Ev::Node(i));
        }
    }

    let outage_at = SimTime::from_secs(100);
    net.segment_mut(broken).force_outage(outage_at, SimDuration::from_secs(120));

    // The 100-probe loss window forgets an outage only after ~25 simulated
    // minutes of clean probing (100 × 15 s) — RON's documented
    // slow-return-to-direct behaviour — so observe for 45 minutes.
    let end = SimTime::from_secs(2_700);
    let mut detoured_during = false;
    let mut direct_after = false;
    while let Some((now, ev)) = q.pop() {
        if now > end {
            break;
        }
        match ev {
            Ev::Node(i) => {
                if let Some(due) = nodes[i as usize].poll_at() {
                    if due > now {
                        q.push(due, Ev::Node(i));
                        continue;
                    }
                }
                let mut out: Vec<Transmit> = Vec::new();
                nodes[i as usize].on_timer(now, now.as_micros() as i64, &mut out);
                for tx in out {
                    if let Delivery::Delivered { delay } = net.transmit(now, HostId(i), tx.to) {
                        q.push(now + delay, Ev::Arrive { to: tx.to.0, packet: tx.packet });
                    }
                }
                if let Some(t) = nodes[i as usize].poll_at() {
                    q.push(t.max(now + SimDuration::from_micros(1)), Ev::Node(i));
                }
            }
            Ev::Arrive { to, packet } => {
                let mut out = Vec::new();
                nodes[to as usize].on_packet(now, now.as_micros() as i64, packet, &mut out);
                for tx in out {
                    if let Delivery::Delivered { delay } = net.transmit(now, HostId(to), tx.to) {
                        q.push(now + delay, Ev::Arrive { to: tx.to.0, packet: tx.packet });
                    }
                }
            }
        }
        // Observe node A's routing decision at salient moments.
        let route = nodes[0].route(b, Policy::MinLoss, now);
        if now > outage_at + SimDuration::from_secs(40)
            && now < outage_at + SimDuration::from_secs(110)
            && matches!(route, Route::Via(_))
        {
            detoured_during = true;
        }
        if now > outage_at + SimDuration::from_secs(1_800) && route == Route::Direct {
            direct_after = true;
        }
    }
    assert!(detoured_during, "loss routing must detour during the outage");
    assert!(direct_after, "loss routing must return to direct after recovery");
}

#[test]
fn outage_loss_is_counted_as_network_loss() {
    // A path outage (not a host crash) must show up in the measured loss,
    // not be discarded.
    let topo = Topology::synthetic(4, 0.0, 99);
    let mut cfg = ExperimentConfig::new(MethodSet::ron_narrow());
    cfg.duration = SimDuration::from_hours(1);
    cfg.seed = 99;
    cfg.flat_load = true;
    // Inject the outage by running a custom network: simplest is a
    // topology where one edge has extreme congestion instead.
    let out = run_experiment(topo, cfg);
    assert_eq!(out.discarded(), 0);
    // Clean network: nothing lost.
    assert_eq!(out.summary("direct*").unwrap().totlp, 0.0);
}
