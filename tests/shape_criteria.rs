//! End-to-end shape criteria (DESIGN.md §5): scaled-down dataset runs
//! must reproduce the paper's orderings — who wins, by roughly what
//! factor — even when the absolute numbers carry scaled-run noise.

use mpath::core::{ScenarioRegistry, ScenarioSpec};
use mpath::netsim::SimDuration;

fn scenario(name: &str) -> ScenarioSpec {
    ScenarioRegistry::builtin().get(name).expect("builtin scenario").clone()
}

#[test]
fn ron2003_shape_holds_at_quarter_day() {
    let out = scenario("ron2003").run(2003, Some(SimDuration::from_hours(6)));

    let direct = out.summary("direct*").unwrap();
    let loss = out.summary("loss").unwrap();
    let mesh = out.summary("direct rand").unwrap();
    let both = out.summary("lat loss").unwrap();
    let dd = out.summary("direct direct").unwrap();
    let lat = out.summary("lat*").unwrap();

    // §4.2: overall loss is "a low 0.42%" — right magnitude.
    assert!(
        (0.2..0.9).contains(&direct.lp1),
        "direct loss {}% out of the paper's magnitude",
        direct.lp1
    );

    // Table 5 totlp ordering: mesh and combined routing beat direct
    // substantially; loss routing must not be worse than direct.
    assert!(mesh.totlp < direct.lp1 * 0.85, "mesh {} vs direct {}", mesh.totlp, direct.lp1);
    assert!(both.totlp < direct.lp1 * 0.85, "lat loss {} vs direct {}", both.totlp, direct.lp1);
    assert!(loss.totlp < direct.lp1 * 1.05, "loss {} vs direct {}", loss.totlp, direct.lp1);

    // §4.4: the same-path pair is the most correlated thing measured.
    let clp_dd = dd.clp.expect("dd clp");
    let clp_mesh = mesh.clp.expect("mesh clp");
    let clp_both = both.clp.expect("lat loss clp");
    assert!(clp_dd > 55.0, "back-to-back CLP {clp_dd} too low for bursty loss");
    assert!(clp_dd > clp_mesh, "CLP: dd {clp_dd} must exceed direct rand {clp_mesh}");
    assert!(clp_mesh > clp_both, "CLP: direct rand {clp_mesh} must exceed lat loss {clp_both}");

    // §4.5: latency routing actually reduces latency; mesh helps a little.
    assert!(lat.lat_ms < direct.lat_ms, "lat {} vs direct {}", lat.lat_ms, direct.lat_ms);
    assert!(mesh.lat_ms <= direct.lat_ms + 0.5, "mesh latency must not exceed direct's");

    // The second copy through a random intermediate is several times
    // lossier than the direct copy (2lp column of Table 5).
    let mesh_lp2 = mesh.lp2.expect("mesh 2lp");
    assert!(
        mesh_lp2 > 2.0 * mesh.lp1,
        "rand-leg loss {mesh_lp2} should be well above direct {}",
        mesh.lp1
    );
}

#[test]
fn ron2002_runs_hotter_than_2003() {
    // Average two independent universes per dataset (merge_outputs sums
    // the accumulators) so one unlucky outage draw cannot flip the
    // ordering at this scaled-down duration.
    let merged = |name: &str| {
        let ds = scenario(name);
        let d = Some(SimDuration::from_hours(5));
        mpath::core::report::merge_outputs(vec![ds.run(2000, d), ds.run(2001, d)])
    };
    let d03 = merged("ron2003").summary("direct*").unwrap();
    let d02 = merged("ron-narrow").summary("direct*").unwrap();
    // Paper: 0.74% (2002) vs 0.42% (2003).
    assert!(
        d02.lp1 > d03.lp1 * 1.15,
        "2002 ({}) must be lossier than 2003 ({})",
        d02.lp1,
        d03.lp1
    );
}

#[test]
fn ron_wide_round_trip_shape() {
    let out = scenario("ron-wide").run(17, Some(SimDuration::from_hours(6)));
    let direct = out.summary("direct").unwrap();
    let rand = out.summary("rand").unwrap();
    let rr = out.summary("rand rand").unwrap();
    let dd = out.summary("direct direct").unwrap();

    // Table 7: the random-intermediate path is several times lossier
    // than direct, and its RTT is much higher.
    assert!(rand.lp1 > 1.5 * direct.lp1, "rand {} vs direct {}", rand.lp1, direct.lp1);
    assert!(rand.lat_ms > direct.lat_ms * 1.3, "rand RTT {} vs direct {}", rand.lat_ms, direct.lat_ms);

    // Two *different* random intermediates are nearly independent: the
    // paper's rand rand CLP is 11.2% against direct direct's 72.7%.
    let clp_rr = rr.clp.expect("rr clp");
    let clp_dd = dd.clp.expect("dd clp");
    assert!(
        clp_rr < clp_dd * 0.6,
        "distinct random paths must be far less correlated: rr {clp_rr} dd {clp_dd}"
    );

    // Every two-copy method's totlp improves on its first leg.
    for name in ["direct rand", "direct lat", "direct loss", "rand lat", "rand loss", "lat loss"] {
        let s = out.summary(name).unwrap();
        assert!(
            s.totlp <= s.lp1,
            "{name}: totlp {} cannot exceed first-leg loss {}",
            s.totlp,
            s.lp1
        );
    }
}

#[test]
fn hour_windows_concentrate_losses() {
    let out = scenario("ron2003").run(5, Some(SimDuration::from_hours(8)));
    let direct = out.index_of("direct*").unwrap();
    let counts = out.win60.threshold_counts(direct);
    let total = out.win60.window_count(direct);
    assert!(total > 1_000, "need a meaningful number of path-hours, got {total}");
    // Most path-hours see no loss at all (§4.2: ">95% of samples had a
    // 0% loss rate" for 20-minute windows; hours are similar).
    assert!(
        (counts[0] as f64) < 0.5 * total as f64,
        "loss must be concentrated: {} of {} hours saw loss",
        counts[0],
        total
    );
    // Threshold counts decrease monotonically.
    for w in counts.windows(2) {
        assert!(w[1] <= w[0]);
    }
}

/// Paper-scale validation: 14 simulated days, 30 hosts, ~33M probe
/// pairs — the full RON2003 campaign. Takes several minutes; run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "paper-scale run (~10 min); the scaled test above covers CI"]
fn ron2003_paper_scale_14_days() {
    let out = scenario("ron2003").run(2003, None);
    let direct = out.summary("direct*").unwrap();
    let loss = out.summary("loss").unwrap();
    let mesh = out.summary("direct rand").unwrap();
    let dd = out.summary("direct direct").unwrap();
    let dd10 = out.summary("dd 10 ms").unwrap();

    assert!((0.30..0.60).contains(&direct.lp1), "direct {}", direct.lp1);
    assert!(loss.totlp < direct.lp1, "reactive must win at scale");
    assert!(mesh.totlp < direct.lp1 * 0.8, "mesh must win at scale");
    let clp_dd = dd.clp.unwrap();
    assert!((62.0..80.0).contains(&clp_dd), "dd clp {clp_dd}");
    assert!(dd10.clp.unwrap() < clp_dd);
    // The deep Table 6 tail exists at this scale.
    let didx = out.index_of("direct*").unwrap();
    assert!(out.win60.threshold_counts(didx)[5] > 0, ">50% hour-windows appear");
}
