//! Whole-system determinism: the same seed must reproduce every table
//! byte for byte — the property that makes experiments debuggable and
//! the repro binary trustworthy.

use mpath::core::{report, ScenarioRegistry, ScenarioSpec};
use mpath::netsim::SimDuration;

fn scenario(name: &str) -> ScenarioSpec {
    ScenarioRegistry::builtin().get(name).expect("builtin scenario").clone()
}

fn table5_text(seed: u64) -> String {
    let out = scenario("ron2003").run(seed, Some(SimDuration::from_mins(90)));
    let rows = report::table5(&out);
    analysis::render_table5("t", &rows)
}

#[test]
fn same_seed_same_table() {
    assert_eq!(table5_text(7), table5_text(7));
}

#[test]
fn different_seed_different_table() {
    assert_ne!(table5_text(7), table5_text(8));
}

#[test]
fn round_trip_scenario_is_deterministic_too() {
    let run = |seed| {
        let out = scenario("ron-wide").run(seed, Some(SimDuration::from_mins(60)));
        let rows = report::table7(&out);
        analysis::render_table7(&rows)
    };
    assert_eq!(run(3), run(3));
}
