//! # mpath — best-path vs. multi-path overlay routing
//!
//! Facade crate re-exporting the full toolkit. See the individual crates
//! for details:
//!
//! * [`netsim`] — deterministic discrete-event Internet simulator;
//! * [`overlay`] — RON-style overlay node (probing, link state, routing);
//! * [`core`] — routing strategies, the measurement-study
//!   experiment driver, and the §5 analytic model;
//! * [`fec`] — packet-level Reed–Solomon erasure coding;
//! * [`trace`] — probe records and the central collector;
//! * [`analysis`] — loss/latency statistics, CDFs and table renderers;
//! * [`live`] — tokio UDP driver for real deployments.

pub use analysis;
pub use fec;
pub use mpath_core as core;
pub use mpath_live as live;
pub use netsim;
pub use overlay;
pub use trace;
